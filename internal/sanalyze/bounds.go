package sanalyze

import (
	"fmt"
	"sort"
	"strings"

	"vcpusim/internal/san"
)

// boundPlaces produces a boundedness verdict for every token place by
// trying certificates from strongest to weakest:
//
//  1. constant — no output link at all: the marking never changes
//     (gate code writing an unlinked place is a conformance violation).
//  2. non-increasing — every documented effect is ≤ 0: bounded by the
//     initial marking (fault budget places).
//  3. p-invariant — a semipositive invariant covers the place: bounded
//     by ⌊value/weight⌋.
//  4. drained — all positive writers are timed, and a pure-enabling
//     instantaneous activity consumes from exactly this place: every
//     stable state has fewer tokens than the drain threshold, so the
//     transient peak is (threshold−1) + the largest single-firing add
//     (clock-tick places emptied by the scheduler step).
//  5. capacity — a declared san.Place.SetCapacity bound, enforced at
//     runtime as a modeling error.
//  6. reachability — the exact maximum over a completely explored state
//     space (pure-arc nets only).
func boundPlaces(n *net, pinvs []Invariant, reach *reachResult) []PlaceBound {
	bounds := make([]PlaceBound, len(n.places))
	for p := range n.places {
		bounds[p] = boundPlace(n, p, pinvs, reach)
	}
	return bounds
}

func boundPlace(n *net, p int, pinvs []Invariant, reach *reachResult) PlaceBound {
	pl := &n.places[p]
	b := PlaceBound{Place: pl.name, Bound: -1}

	hasOutput := len(pl.vagueWriters) > 0
	nonPositive := true
	maxAdd := 0
	for ai := range n.acts {
		a := &n.acts[ai]
		for _, x := range a.out {
			if x.place == p {
				hasOutput = true
			}
		}
		if d := a.effect(p); d > 0 {
			nonPositive = false
			if d > maxAdd {
				maxAdd = d
			}
		}
	}
	if !hasOutput {
		b.Bound = pl.initial
		b.Method = "constant"
		b.Detail = "no documented writes"
		return b
	}
	if nonPositive && n.eligible(p) {
		b.Bound = pl.initial
		b.Method = "non-increasing"
		b.Detail = "every documented effect is ≤ 0"
		return b
	}
	if n.eligible(p) {
		for _, iv := range pinvs {
			w, ok := iv.Weights[pl.name]
			if !ok || w <= 0 || iv.Value < 0 {
				continue
			}
			bound := int(iv.Value / w)
			if b.Bound < 0 || bound < b.Bound {
				b.Bound = bound
				b.Method = "p-invariant"
				b.Detail = fmt.Sprintf("%s = %d", iv, iv.Value)
			}
		}
		if b.Bound >= 0 {
			return b
		}
	}
	if bound, drain, ok := drainCertificate(n, p, maxAdd); ok {
		b.Bound = bound
		b.Method = "drained"
		b.Detail = fmt.Sprintf("timed writers only; instantaneous %s empties the place", drain)
		return b
	}
	if pl.capacity > 0 {
		b.Bound = pl.capacity
		b.Method = "capacity"
		b.Detail = "declared capacity, runtime-enforced"
		return b
	}
	if reach.complete() {
		b.Bound = reach.maxTokens[p]
		b.Method = "reachability"
		b.Detail = fmt.Sprintf("exact maximum over %d states", reach.states)
		return b
	}
	var why []string
	if !n.eligible(p) {
		why = append(why, fmt.Sprintf("unquantified gate writes by %s", strings.Join(uniqueSorted(pl.vagueWriters), ", ")))
	} else {
		why = append(why, "no invariant cover, drain, or capacity certificate")
	}
	b.Detail = "boundedness unproven: " + strings.Join(why, "; ")
	return b
}

// drainCertificate proves a place bounded when every activity that adds
// tokens to it is timed (so nothing grows it during stabilization) and
// some enabled-by-arcs-only instantaneous activity consumes from exactly
// this place. In every stable state that activity is disabled, so the
// place holds at most threshold−1 tokens; one timed firing can add at
// most maxAdd before the next stabilization empties it again.
func drainCertificate(n *net, p int, maxAdd int) (bound int, drain string, ok bool) {
	if !n.eligible(p) || maxAdd == 0 {
		return 0, "", false
	}
	for ai := range n.acts {
		a := &n.acts[ai]
		if a.effect(p) > 0 && a.kind != san.Timed {
			return 0, "", false
		}
	}
	for ai := range n.acts {
		a := &n.acts[ai]
		if a.kind != san.Instantaneous || a.disabled {
			continue
		}
		// Pure enabling: predicates are exactly the counted input arcs,
		// and the only arc consumes from p.
		if a.gatePreds != 0 || a.preds != a.arcPreds {
			continue
		}
		if len(a.in) != 1 || a.in[0].place != p {
			continue
		}
		if a.effect(p) >= 0 {
			continue
		}
		// Enabling requirement, not consumption: in every stable state
		// the drain is disabled, so the place holds at most req−1.
		threshold := a.inReq[0].n
		return threshold - 1 + maxAdd, a.name, true
	}
	return 0, "", false
}

// checkConservation verifies each declared conservation law against the
// incidence matrix: every activity's weighted effect on the law's
// support must be zero, and no support place may receive unquantified
// gate writes (which would make the law unverifiable).
func checkConservation(n *net, laws []san.Conservation, r *Report) {
	for _, law := range laws {
		bad := false
		var sum int64
		for _, w := range law.Weights {
			p, ok := n.placeIdx[w.Place]
			if !ok {
				r.Findings = append(r.Findings, Finding{
					Check:     CheckConservation,
					Severity:  Error,
					Component: "law " + law.Name,
					Message:   fmt.Sprintf("references unknown or extended place %s", w.Place),
				})
				bad = true
				continue
			}
			if !n.eligible(p) {
				r.Findings = append(r.Findings, Finding{
					Check:     CheckConservation,
					Severity:  Error,
					Component: "law " + law.Name,
					Message: fmt.Sprintf("unverifiable: place %s receives unquantified gate writes (%s)",
						w.Place, strings.Join(uniqueSorted(n.places[p].vagueWriters), ", ")),
				})
				bad = true
				continue
			}
			sum += int64(w.Weight) * int64(n.places[p].initial)
		}
		if bad {
			continue
		}
		for ai := range n.acts {
			a := &n.acts[ai]
			var delta int64
			for _, w := range law.Weights {
				delta += int64(w.Weight) * int64(a.effect(n.placeIdx[w.Place]))
			}
			if delta != 0 {
				r.Findings = append(r.Findings, Finding{
					Check:     CheckConservation,
					Severity:  Error,
					Component: "law " + law.Name,
					Message: fmt.Sprintf("broken: activity %s changes the weighted sum by %+d",
						a.name, delta),
				})
				bad = true
			}
		}
		if !bad {
			r.Conservation = append(r.Conservation,
				fmt.Sprintf("%s: %s = %d", law.Name, lawString(law), sum))
		}
	}
}

func lawString(law san.Conservation) string {
	parts := make([]string, 0, len(law.Weights))
	for _, w := range law.Weights {
		if w.Weight == 1 {
			parts = append(parts, w.Place)
		} else {
			parts = append(parts, fmt.Sprintf("%d·%s", w.Weight, w.Place))
		}
	}
	return strings.Join(parts, " + ")
}

// deadlockVerdict proves deadlock freedom either exactly (complete
// reachability with no deadlock) or by the perpetual-activity
// certificate: a timed activity with no enabling condition at all is
// enabled in every marking, so the event loop always has a next event.
func deadlockVerdict(n *net, reach *reachResult) DeadlockVerdict {
	if reach.deadlock != nil {
		return DeadlockVerdict{
			Status: "deadlock",
			Method: "reachability",
			Detail: fmt.Sprintf("reachable dead marking after %d firings", len(reach.deadlock.Trace)),
		}
	}
	if reach.complete() {
		return DeadlockVerdict{
			Status: "deadlock-free",
			Method: "reachability",
			Detail: fmt.Sprintf("no dead marking among %d reachable states", reach.states),
		}
	}
	for ai := range n.acts {
		a := &n.acts[ai]
		if a.kind == san.Timed && a.preds == 0 && a.gatePreds == 0 && !a.disabled {
			return DeadlockVerdict{
				Status: "deadlock-free",
				Method: "perpetual-activity",
				Detail: fmt.Sprintf("timed activity %s has no enabling condition and is enabled in every marking", a.name),
			}
		}
	}
	return DeadlockVerdict{
		Status: "unproven",
		Detail: "no perpetual timed activity and reachability incomplete",
	}
}

func uniqueSorted(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
