package sanalyze

import (
	"fmt"
	"sort"

	"vcpusim/internal/san"
)

// maxConformanceFindings caps the violations reported per run; repeats
// of the same (activity, place) pair are deduplicated first.
const maxConformanceFindings = 20

// Conformance replays an instance for one horizon and verifies that
// every firing changes token markings exactly as the activity's
// documented links promise:
//
//   - a place with no output link from the firing activity must not
//     change (an undeclared gate write);
//   - a place whose links to the activity are all counted must change by
//     exactly the documented net amount;
//   - a zero-count output link admits any change (the write is declared
//     but unquantified).
//
// This is the runtime half of the structural story: every static
// certificate that leans on counted links (LinkN, invariants,
// conservation laws) is only as good as the links, and this check makes
// lying links fail the vet gate. It returns the violations and the
// number of firings checked.
func Conformance(in *san.Instance, horizon float64, seed uint64) ([]Finding, int, error) {
	model := in.Program().Model()
	places := model.Places()
	idx := make(map[string]int, len(places))
	for i, p := range places {
		idx[p.Name()] = i
	}

	// Documented expectations per activity: exact net delta for counted
	// places, a wildcard for places with a zero-count output link.
	type expect struct {
		delta []int
		vague map[int]bool
		link  map[int]bool // any output link at all
	}
	expects := map[string]*expect{}
	for _, a := range model.Activities() {
		ex := &expect{delta: make([]int, len(places)), vague: map[int]bool{}, link: map[int]bool{}}
		for _, l := range a.Links() {
			pi, ok := idx[l.Place]
			if !ok {
				continue // extended place: no token marking to check
			}
			switch {
			case l.Kind == san.LinkOutput && l.Tokens == 0:
				ex.vague[pi] = true
				ex.link[pi] = true
			case l.Kind == san.LinkOutput:
				ex.delta[pi] += l.Tokens
				ex.link[pi] = true
			case l.Tokens > 0: // counted input arc
				ex.delta[pi] -= l.Tokens
				ex.link[pi] = true
			}
		}
		expects[a.Name()] = ex
	}

	prev := make([]int, len(places))
	seen := map[string]bool{} // (activity, place) pairs already reported
	var findings []Finding
	checked := 0
	in.SetFireHooks(
		func(a *san.Activity) {
			for i, p := range places {
				prev[i] = p.Tokens()
			}
		},
		func(a *san.Activity) {
			checked++
			ex := expects[a.Name()]
			for i, p := range places {
				d := p.Tokens() - prev[i]
				if ex.vague[i] || d == ex.delta[i] {
					continue
				}
				key := a.Name() + "\x00" + p.Name()
				if seen[key] {
					continue
				}
				seen[key] = true
				msg := fmt.Sprintf("gate changed the marking by %+d but the documented links promise %+d", d, ex.delta[i])
				if !ex.link[i] && ex.delta[i] == 0 {
					msg = fmt.Sprintf("undeclared write: gate changed the marking by %+d with no output link documented", d)
				}
				findings = append(findings, Finding{
					Check:     CheckConformance,
					Severity:  Error,
					Component: fmt.Sprintf("activity %s, place %s", a.Name(), p.Name()),
					Message:   msg,
				})
			}
		},
	)
	defer in.SetFireHooks(nil, nil)

	in.Reset(seed)
	if _, err := in.Run(horizon); err != nil {
		return findings, checked, err
	}
	if len(findings) > maxConformanceFindings {
		findings = findings[:maxConformanceFindings]
	}
	sort.SliceStable(findings, func(i, j int) bool { return findings[i].Component < findings[j].Component })
	return findings, checked, nil
}
