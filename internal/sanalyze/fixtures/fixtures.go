// Package fixtures holds small pure-arc SAN models with deliberately
// seeded structural defects, one positive (defective) and one negative
// (clean) fixture per sanalyze check: an unbounded place, a reachable
// deadlock, a dead activity, and a broken conservation law. They
// unit-test the engine, pin its reports through the golden file in
// internal/vet/testdata, and let `vcpusim vet -fixtures` demonstrate
// every structural check firing with its counterexample.
package fixtures

import (
	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sanalyze"
)

// Fixture is one named model with its expected analyzer outcome.
type Fixture struct {
	// Name identifies the fixture; "-bad" fixtures seed a defect, "-ok"
	// fixtures are the matching clean variant.
	Name string
	// Expect is the exact set of check identifiers Analyze must report
	// (order-insensitive, duplicates collapsed); empty means the model
	// must verify clean.
	Expect []string
	// Disabled is passed to the analysis as sanalyze.Options.Disabled,
	// mirroring a fault plan arming dormant activities.
	Disabled []string
	// Build constructs the model.
	Build func() *san.Model
}

// All returns every fixture, defective and clean, in a fixed order.
func All() []Fixture {
	return []Fixture{
		{
			Name: "unbounded-place-bad",
			Expect: []string{
				sanalyze.CheckUnbounded,
				// The growth cut leaves reachability incomplete, so the
				// pumped place also (correctly) lacks a bound certificate.
				sanalyze.CheckBoundUnproven,
			},
			Build: func() *san.Model {
				m := san.NewModel("unbounded_place_bad")
				s := m.Sub("s")
				buf := s.Place("buf", 0)
				// A producer with no consumer: every firing pumps buf.
				s.TimedActivity("produce", rng.Exponential{Rate: 1}).
					OutputArc(buf, 1)
				return m
			},
		},
		{
			Name: "unbounded-place-ok",
			Build: func() *san.Model {
				m := san.NewModel("unbounded_place_ok")
				s := m.Sub("s")
				idle := s.Place("idle", 1)
				busy := s.Place("busy", 0)
				s.TimedActivity("produce", rng.Exponential{Rate: 1}).
					InputArc(idle, 1).OutputArc(busy, 1)
				s.TimedActivity("release", rng.Exponential{Rate: 1}).
					InputArc(busy, 1).OutputArc(idle, 1)
				return m
			},
		},
		{
			Name:   "deadlock-bad",
			Expect: []string{sanalyze.CheckDeadlock},
			Build: func() *san.Model {
				m := san.NewModel("deadlock_bad")
				s := m.Sub("s")
				fuel := s.Place("fuel", 3)
				ash := s.Place("ash", 0)
				// fuel is consumed and never replenished: after three
				// firings no activity is enabled.
				s.TimedActivity("burn", rng.Exponential{Rate: 1}).
					InputArc(fuel, 1).OutputArc(ash, 1)
				return m
			},
		},
		{
			Name: "deadlock-ok",
			Build: func() *san.Model {
				m := san.NewModel("deadlock_ok")
				s := m.Sub("s")
				fuel := s.Place("fuel", 3)
				ash := s.Place("ash", 0)
				s.TimedActivity("burn", rng.Exponential{Rate: 1}).
					InputArc(fuel, 1).OutputArc(ash, 1)
				s.TimedActivity("refine", rng.Exponential{Rate: 1}).
					InputArc(ash, 1).OutputArc(fuel, 1)
				return m
			},
		},
		{
			Name:   "dead-activity-bad",
			Expect: []string{sanalyze.CheckDeadActivity},
			Build: func() *san.Model {
				m := san.NewModel("dead_activity_bad")
				s := m.Sub("s")
				idle := s.Place("idle", 1)
				busy := s.Place("busy", 0)
				never := s.Place("never", 0)
				s.TimedActivity("produce", rng.Exponential{Rate: 1}).
					InputArc(idle, 1).OutputArc(busy, 1)
				s.TimedActivity("release", rng.Exponential{Rate: 1}).
					InputArc(busy, 1).OutputArc(idle, 1)
				// never is never marked, so audit is enabled in no
				// reachable marking.
				s.InstantActivity("audit").
					InputArc(never, 1).OutputArc(never, 1)
				return m
			},
		},
		{
			Name: "dead-activity-ok",
			Build: func() *san.Model {
				m := san.NewModel("dead_activity_ok")
				s := m.Sub("s")
				idle := s.Place("idle", 1)
				busy := s.Place("busy", 0)
				flag := s.Place("flag", 0)
				s.TimedActivity("produce", rng.Exponential{Rate: 1}).
					InputArc(idle, 1).OutputArc(busy, 1)
				s.TimedActivity("release", rng.Exponential{Rate: 1}).
					InputArc(busy, 1).OutputArc(idle, 1)
				// raise marks flag; audit drains it during stabilization,
				// so both fire and flag earns a drain certificate.
				s.TimedActivity("raise", rng.Exponential{Rate: 1}).
					OutputArc(flag, 1)
				s.InstantActivity("audit").
					InputArc(flag, 1)
				return m
			},
		},
		{
			Name:   "conservation-bad",
			Expect: []string{sanalyze.CheckConservation},
			Build: func() *san.Model {
				m := san.NewModel("conservation_bad")
				s := m.Sub("s")
				a := s.Place("a", 2)
				b := s.Place("b", 0)
				run := s.Place("run", 1)
				// move duplicates tokens: a+b is declared conserved but
				// each firing grows the sum by one.
				s.TimedActivity("move", rng.Exponential{Rate: 1}).
					InputArc(a, 1).OutputArc(b, 2)
				s.TimedActivity("tick", rng.Exponential{Rate: 1}).
					InputArc(run, 1).OutputArc(run, 1)
				m.DeclareConservation("tokens",
					san.PlaceWeight{Place: a.Name(), Weight: 1},
					san.PlaceWeight{Place: b.Name(), Weight: 1})
				return m
			},
		},
		{
			Name: "conservation-ok",
			Build: func() *san.Model {
				m := san.NewModel("conservation_ok")
				s := m.Sub("s")
				a := s.Place("a", 2)
				b := s.Place("b", 0)
				run := s.Place("run", 1)
				s.TimedActivity("move", rng.Exponential{Rate: 1}).
					InputArc(a, 1).OutputArc(b, 1)
				s.TimedActivity("tick", rng.Exponential{Rate: 1}).
					InputArc(run, 1).OutputArc(run, 1)
				m.DeclareConservation("tokens",
					san.PlaceWeight{Place: a.Name(), Weight: 1},
					san.PlaceWeight{Place: b.Name(), Weight: 1})
				return m
			},
		},
		{
			Name:     "disabled-not-dead",
			Disabled: []string{"s/backup"},
			Build: func() *san.Model {
				m := san.NewModel("disabled_not_dead")
				s := m.Sub("s")
				idle := s.Place("idle", 1)
				busy := s.Place("busy", 0)
				s.TimedActivity("produce", rng.Exponential{Rate: 1}).
					InputArc(idle, 1).OutputArc(busy, 1)
				s.TimedActivity("release", rng.Exponential{Rate: 1}).
					InputArc(busy, 1).OutputArc(idle, 1)
				// backup would fire when enabled, but the run disables it
				// (a fault plan keeping an injector dormant): reachability
				// must exclude it rather than call it dead.
				s.TimedActivity("backup", rng.Exponential{Rate: 1}).
					InputArc(busy, 1).OutputArc(idle, 1)
				return m
			},
		},
	}
}
