package sanalyze

import "fmt"

// invariants computes semipositive P-invariants (and, on fully pure-arc
// nets, T-invariants) of the documented incidence matrix with the Farkas
// variant of integer Gaussian elimination: start from the identity
// appended to the matrix, then eliminate each column by combining
// sign-opposite rows, so every surviving row is a nonnegative integer
// solution of yᵀC = 0 (resp. Cx = 0).
func invariants(n *net, r *Report) (pinvs, tinvs []Invariant) {
	// P-invariants: rows are eligible places, columns are activity
	// effects. Effects on eligible places are exact by construction.
	var eligible []int
	for p := range n.places {
		if n.eligible(p) {
			eligible = append(eligible, p)
		}
	}
	rows := make([]farkasRow, 0, len(eligible))
	for yi, p := range eligible {
		row := farkasRow{c: make([]int64, len(n.acts)), y: make([]int64, len(eligible))}
		for ai := range n.acts {
			row.c[ai] = int64(n.acts[ai].effect(p))
		}
		row.y[yi] = 1
		rows = append(rows, row)
	}
	sols, complete := farkas(rows, len(n.acts))
	if !complete {
		r.Findings = append(r.Findings, Finding{
			Check:     CheckBudget,
			Severity:  Warning,
			Component: "model " + n.name,
			Message: fmt.Sprintf("P-invariant basis truncated at %d rows; boundedness certificates may be incomplete",
				maxInvariantRows),
		})
	}
	for _, y := range sols {
		iv := Invariant{Weights: map[string]int64{}}
		for yi, w := range y {
			if w != 0 {
				p := eligible[yi]
				iv.Weights[n.places[p].name] = w
				iv.Value += w * int64(n.places[p].initial)
			}
		}
		pinvs = append(pinvs, iv)
	}

	// T-invariants need every column exact, i.e. a fully pure-arc net.
	pure := true
	for i := range n.acts {
		if !n.acts[i].pure() {
			pure = false
			break
		}
	}
	if pure && len(n.acts) > 0 {
		rows = rows[:0]
		for ai := range n.acts {
			row := farkasRow{c: make([]int64, len(n.places)), y: make([]int64, len(n.acts))}
			for p := range n.places {
				row.c[p] = int64(n.acts[ai].effect(p))
			}
			row.y[ai] = 1
			rows = append(rows, row)
		}
		sols, _ = farkas(rows, len(n.places))
		for _, x := range sols {
			iv := Invariant{Weights: map[string]int64{}}
			for ai, w := range x {
				if w != 0 {
					iv.Weights[n.acts[ai].name] = w
				}
			}
			tinvs = append(tinvs, iv)
		}
	}
	return pinvs, tinvs
}

// farkasRow carries a working row [c | y] of the Farkas tableau: c is
// the remaining matrix part, y the nonnegative combination built so far.
type farkasRow struct {
	c []int64
	y []int64
}

// farkas eliminates the cols columns of the tableau and returns the
// minimal-support semipositive solutions. complete is false when the
// working set hit maxInvariantRows and had to be truncated.
func farkas(rows []farkasRow, cols int) (sols [][]int64, complete bool) {
	complete = true
	for col := 0; col < cols; col++ {
		var zero, pos, neg []farkasRow
		for _, r := range rows {
			switch {
			case r.c[col] == 0:
				zero = append(zero, r)
			case r.c[col] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				if len(next) >= maxInvariantRows {
					complete = false
					break
				}
				// λp·rp + λn·rn with λp = -rn.c[col] > 0, λn = rp.c[col] > 0
				// zeroes the column and keeps y nonnegative.
				lp, ln := -rn.c[col], rp.c[col]
				nr := farkasRow{c: make([]int64, len(rp.c)), y: make([]int64, len(rp.y))}
				for i := range nr.c {
					nr.c[i] = lp*rp.c[i] + ln*rn.c[i]
				}
				for i := range nr.y {
					nr.y[i] = lp*rp.y[i] + ln*rn.y[i]
				}
				normalize(&nr)
				next = append(next, nr)
			}
			if !complete {
				break
			}
		}
		rows = dedupeRows(next)
	}
	// Every surviving row solves yᵀC = 0. Keep minimal-support,
	// non-trivial solutions only.
	for _, r := range rows {
		if isZero(r.y) {
			continue
		}
		sols = append(sols, r.y)
	}
	sols = minimalSupport(sols)
	return sols, complete
}

// normalize divides a row by the gcd of all its entries.
func normalize(r *farkasRow) {
	var g int64
	for _, v := range r.c {
		g = gcd64(g, v)
	}
	for _, v := range r.y {
		g = gcd64(g, v)
	}
	if g > 1 {
		for i := range r.c {
			r.c[i] /= g
		}
		for i := range r.y {
			r.y[i] /= g
		}
	}
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func isZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// dedupeRows drops exact duplicates, preserving order.
func dedupeRows(rows []farkasRow) []farkasRow {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := fmt.Sprint(r.c, r.y)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// minimalSupport keeps solutions whose support is not a strict superset
// of another solution's support (the minimal-support invariants that
// generate the rest).
func minimalSupport(sols [][]int64) [][]int64 {
	support := func(v []int64) map[int]bool {
		s := map[int]bool{}
		for i, x := range v {
			if x != 0 {
				s[i] = true
			}
		}
		return s
	}
	sups := make([]map[int]bool, len(sols))
	for i, v := range sols {
		sups[i] = support(v)
	}
	var out [][]int64
	for i := range sols {
		minimal := true
		for j := range sols {
			if i == j || len(sups[j]) >= len(sups[i]) {
				continue
			}
			subset := true
			for p := range sups[j] {
				if !sups[i][p] {
					subset = false
					break
				}
			}
			if subset {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, sols[i])
		}
	}
	return out
}
