package sanalyze

import "vcpusim/internal/san"

// net is the structural view the analyses share: token places indexed
// densely, activities with their counted arc effects separated from the
// opaque (zero-count or gate-mediated) connections.
type net struct {
	name     string
	places   []placeNode
	placeIdx map[string]int // token places only
	acts     []actNode
	disabled map[string]bool
}

type placeNode struct {
	name     string
	initial  int
	capacity int
	// vagueWriters lists activities with a zero-count output link to the
	// place: they write it an amount the structure does not quantify, so
	// the place is ineligible for exact incidence math.
	vagueWriters []string
}

// arc is one counted token flow aggregated per place.
type arc struct {
	place int
	n     int
}

type actNode struct {
	name     string
	kind     san.ActivityKind
	priority int
	defined  int

	in  []arc // counted input arcs, aggregated per place (consumption sums)
	out []arc // counted output arcs, aggregated per place
	// inReq is the per-place enabling requirement. The runtime installs
	// an independent ≥ predicate per arc, so two one-token arcs on one
	// place require one token but consume two; keeping the max separate
	// from the sum lets the explorer reproduce that (and flag the
	// negative marking it causes).
	inReq []arc

	// preds is the total predicate count; arcPreds is the number of
	// counted input links. For a pure-arc activity preds == arcPreds:
	// the enabling condition is exactly "every counted input satisfied".
	preds    int
	arcPreds int

	gatePreds, gateFns, gateCases int
	// vague reports zero-count links or links to extended places: the
	// activity reads or writes state the incidence matrix cannot see.
	vague bool
	// disabled activities are excluded from the run (Options.Disabled).
	disabled bool
}

// pure reports that the activity's enabling condition and marking effect
// are exactly its counted arcs, so reachability can fire it symbolically.
func (a *actNode) pure() bool {
	return a.gatePreds == 0 && a.gateFns == 0 && a.gateCases == 0 &&
		!a.vague && a.preds == a.arcPreds
}

// effect returns the activity's net counted effect on place p (output
// minus input tokens), or 0 when unconnected.
func (a *actNode) effect(p int) int {
	d := 0
	for _, x := range a.out {
		if x.place == p {
			d += x.n
		}
	}
	for _, x := range a.in {
		if x.place == p {
			d -= x.n
		}
	}
	return d
}

// buildNet indexes the structure snapshot for analysis.
func buildNet(st san.Structure, disabled []string) *net {
	n := &net{
		name:     st.Name,
		placeIdx: make(map[string]int),
		disabled: make(map[string]bool, len(disabled)),
	}
	for _, d := range disabled {
		n.disabled[d] = true
	}
	for _, p := range st.Places {
		if p.Extended {
			continue
		}
		n.placeIdx[p.Name] = len(n.places)
		n.places = append(n.places, placeNode{
			name:     p.Name,
			initial:  p.Initial,
			capacity: p.Capacity,
		})
	}
	for i, a := range st.Activities {
		an := actNode{
			name:      a.Name,
			kind:      a.Kind,
			priority:  a.Priority,
			defined:   i,
			preds:     a.Predicates,
			gatePreds: a.GatePredicates,
			gateFns:   a.GateFuncs,
			gateCases: a.GateCases,
			disabled:  n.disabled[a.Name],
		}
		inN := map[int]int{}
		reqN := map[int]int{}
		outN := map[int]int{}
		for _, l := range a.Links {
			pi, ok := n.placeIdx[l.Place]
			if !ok {
				// Extended place (or a dangling name, which sanlint
				// reports): invisible to token math.
				an.vague = true
				continue
			}
			if l.Tokens <= 0 {
				an.vague = true
				if l.Kind == san.LinkOutput {
					n.places[pi].vagueWriters = append(n.places[pi].vagueWriters, a.Name)
				}
				continue
			}
			if l.Kind == san.LinkInput {
				inN[pi] += l.Tokens
				if l.Tokens > reqN[pi] {
					reqN[pi] = l.Tokens
				}
				an.arcPreds++
			} else {
				outN[pi] += l.Tokens
			}
		}
		an.in = arcsOf(inN)
		an.inReq = arcsOf(reqN)
		an.out = arcsOf(outN)
		n.acts = append(n.acts, an)
	}
	return n
}

func arcsOf(m map[int]int) []arc {
	if len(m) == 0 {
		return nil
	}
	out := make([]arc, 0, len(m))
	for p, c := range m {
		out = append(out, arc{place: p, n: c})
	}
	// Deterministic order for hashing and reports.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].place < out[j-1].place; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// eligible reports whether a place's marking is fully described by
// counted arcs: no activity writes it an unquantified amount. Reads
// (zero-count input links) are fine — they cannot change the marking,
// and the conformance check forbids undeclared writes.
func (n *net) eligible(p int) bool { return len(n.places[p].vagueWriters) == 0 }

// initialMarking returns the token-place marking vector.
func (n *net) initialMarking() []int {
	m := make([]int, len(n.places))
	for i, p := range n.places {
		m[i] = p.initial
	}
	return m
}
