package sanalyze

import (
	"encoding/binary"
	"fmt"

	"vcpusim/internal/san"
)

// reachResult is the outcome of the explicit-state exploration.
type reachResult struct {
	ran        string // empty when the exploration ran, else the skip reason
	states     int
	firings    int
	budgetHit  bool
	cut        bool // some branch was cut (unbounded growth or livelock)
	deadlock   *Finding
	findings   []Finding
	maxTokens  []int
	fired      map[string]bool
	activities int
}

// complete reports that the whole reachability set was enumerated, so
// exact bounds and dead-activity verdicts are sound.
func (rr *reachResult) complete() bool {
	return rr.ran == "" && !rr.budgetHit && !rr.cut
}

func (rr *reachResult) summary() ReachSummary {
	if rr.ran != "" {
		return ReachSummary{SkipReason: rr.ran}
	}
	return ReachSummary{
		Ran:      true,
		States:   rr.states,
		Firings:  rr.firings,
		Complete: rr.complete(),
	}
}

// explorer carries the DFS state.
type explorer struct {
	n   *net
	opt Options

	timed    []int // indices into n.acts, definition order
	instants []int // indices into n.acts, (priority asc, definition) order

	visited map[string]bool
	// path is the DFS ancestor chain: markings with the firing sequence
	// that produced each, used for Karp–Miller domination and traces.
	path []pathStep

	res *reachResult
}

type pathStep struct {
	m   []int
	seq []string // firings that led from the parent step to m
}

// explore runs bounded explicit-state reachability. It only applies to
// pure-arc nets — every activity's enabling condition and effect must be
// exactly its counted arcs — because gate closures cannot be executed
// symbolically; on gate-coupled models it records a skip reason and the
// caller falls back to the certificate-based passes.
func explore(n *net, opt Options) *reachResult {
	res := &reachResult{
		fired:      map[string]bool{},
		maxTokens:  make([]int, len(n.places)),
		activities: len(n.acts),
	}
	impure := 0
	for i := range n.acts {
		if !n.acts[i].pure() {
			impure++
		}
	}
	if impure > 0 {
		res.ran = fmt.Sprintf("%d of %d activities are gate-coupled (opaque enabling or effect)", impure, len(n.acts))
		return res
	}
	if len(n.acts) == 0 {
		res.ran = "no activities"
		return res
	}

	e := &explorer{n: n, opt: opt, visited: map[string]bool{}, res: res}
	for i := range n.acts {
		if n.acts[i].disabled {
			continue
		}
		if n.acts[i].kind == san.Timed {
			e.timed = append(e.timed, i)
		} else {
			e.instants = append(e.instants, i)
		}
	}
	// Instantaneous firing order mirrors san.Compile: priority
	// ascending, then definition order.
	for i := 1; i < len(e.instants); i++ {
		for j := i; j > 0; j-- {
			a, b := &n.acts[e.instants[j-1]], &n.acts[e.instants[j]]
			if a.priority < b.priority || (a.priority == b.priority && a.defined < b.defined) {
				break
			}
			e.instants[j], e.instants[j-1] = e.instants[j-1], e.instants[j]
		}
	}

	m0 := n.initialMarking()
	var initSeq []string
	if !e.stabilize(m0, &initSeq) {
		return res
	}
	e.note(m0)
	e.visited[markingKey(m0)] = true
	res.states = 1
	e.path = append(e.path, pathStep{m: m0, seq: initSeq})
	e.dfs()
	return res
}

// dfs explores depth-first from the last path step.
func (e *explorer) dfs() {
	m := e.path[len(e.path)-1].m
	if e.res.states > e.opt.MaxStates || e.res.firings > e.opt.MaxFirings {
		e.res.budgetHit = true
		return
	}

	anyEnabled := false
	for _, ai := range e.timed {
		a := &e.n.acts[ai]
		if !enabled(a, m) {
			continue
		}
		anyEnabled = true
		m2 := append([]int(nil), m...)
		seq := []string{a.name}
		if !e.fire(a, m2) {
			continue
		}
		if !e.stabilize(m2, &seq) {
			continue
		}
		e.note(m2)
		if e.dominates(m2, seq) {
			continue
		}
		key := markingKey(m2)
		if e.visited[key] {
			continue
		}
		e.visited[key] = true
		e.res.states++
		e.path = append(e.path, pathStep{m: m2, seq: seq})
		e.dfs()
		e.path = e.path[:len(e.path)-1]
		if e.res.budgetHit {
			return
		}
	}
	if !anyEnabled && e.res.deadlock == nil {
		e.res.deadlock = &Finding{
			Check:     CheckDeadlock,
			Severity:  Error,
			Component: "model " + e.n.name,
			Message:   "reachable marking enables no activity: the simulation would stall with an empty event list",
			Trace:     e.traceTo(len(e.path)),
		}
		e.res.findings = append(e.res.findings, *e.res.deadlock)
	}
}

// dominates checks the new marking against every DFS ancestor; strict
// domination (≥ everywhere, > somewhere) proves unbounded growth for the
// strictly larger places (the Karp–Miller coverability argument: the
// connecting firing sequence can be repeated forever).
func (e *explorer) dominates(m2 []int, seq []string) bool {
	for _, anc := range e.path {
		ge, gt := true, -1
		for p := range m2 {
			if m2[p] < anc.m[p] {
				ge = false
				break
			}
			if m2[p] > anc.m[p] {
				gt = p
			}
		}
		if ge && gt >= 0 {
			e.res.cut = true
			trace := append(e.traceTo(len(e.path)), seq...)
			for p := range m2 {
				if m2[p] > anc.m[p] {
					e.res.findings = append(e.res.findings, Finding{
						Check:     CheckUnbounded,
						Severity:  Error,
						Component: "place " + e.n.places[p].name,
						Message: fmt.Sprintf("unbounded: the trailing firing sequence pumps the marking from %d to %d and can repeat forever",
							anc.m[p], m2[p]),
						Trace: trace,
					})
				}
			}
			return true
		}
	}
	return false
}

// stabilize fires enabled instantaneous activities (lowest priority
// first, mirroring the engine) until none is enabled, appending each
// firing to seq. It returns false when the chain hits the livelock cap
// or a firing would drive a marking negative.
func (e *explorer) stabilize(m []int, seq *[]string) bool {
	for steps := 0; ; steps++ {
		if steps >= e.opt.StabilizeCap {
			e.res.cut = true
			e.res.findings = append(e.res.findings, Finding{
				Check:     CheckLivelock,
				Severity:  Error,
				Component: "model " + e.n.name,
				Message: fmt.Sprintf("instantaneous activities still enabled after %d chained firings (runtime livelock guard would abort the run)",
					e.opt.StabilizeCap),
				Trace: append(e.traceTo(len(e.path)), *seq...),
			})
			return false
		}
		fired := false
		for _, ai := range e.instants {
			a := &e.n.acts[ai]
			if !enabled(a, m) {
				continue
			}
			*seq = append(*seq, a.name)
			if !e.fire(a, m) {
				return false
			}
			fired = true
			break
		}
		if !fired {
			return true
		}
	}
}

// enabled mirrors the runtime check: every counted input arc installs an
// independent ≥ predicate, so the per-place requirement is the largest
// single arc, not the consumption sum.
func enabled(a *actNode, m []int) bool {
	for _, x := range a.inReq {
		if m[x.place] < x.n {
			return false
		}
	}
	return true
}

// fire applies the counted effect in place. A negative result marking is
// a modeling error (the runtime records it and aborts); it is reported
// once and the branch abandoned.
func (e *explorer) fire(a *actNode, m []int) bool {
	e.res.firings++
	e.res.fired[a.name] = true
	for _, x := range a.in {
		m[x.place] -= x.n
	}
	for _, x := range a.out {
		m[x.place] += x.n
	}
	for p, v := range m {
		if v < 0 {
			e.res.cut = true
			e.res.findings = append(e.res.findings, Finding{
				Check:     CheckNegativeMarking,
				Severity:  Error,
				Component: "place " + e.n.places[p].name,
				Message: fmt.Sprintf("firing %s drives the marking to %d (multiple input arcs on one place check independently but consume cumulatively)",
					a.name, v),
				Trace: e.traceTo(len(e.path)),
			})
			return false
		}
	}
	return true
}

// note records per-place maxima.
func (e *explorer) note(m []int) {
	for p, v := range m {
		if v > e.res.maxTokens[p] {
			e.res.maxTokens[p] = v
		}
	}
}

// traceTo flattens the firing sequences of the first n path steps.
func (e *explorer) traceTo(n int) []string {
	var out []string
	for _, s := range e.path[:n] {
		out = append(out, s.seq...)
	}
	return out
}

// deadFindings reports activities that never fired over a completely
// explored state space. Disabled activities are excluded by
// construction: they are never candidates, so they are never "dead".
func deadFindings(n *net, rr *reachResult) []Finding {
	if !rr.complete() {
		return nil
	}
	var out []Finding
	for i := range n.acts {
		a := &n.acts[i]
		if a.disabled || rr.fired[a.name] {
			continue
		}
		out = append(out, Finding{
			Check:     CheckDeadActivity,
			Severity:  Error,
			Component: "activity " + a.name,
			Message:   fmt.Sprintf("never enabled in any of the %d reachable markings", rr.states),
		})
	}
	return out
}

// markingKey canonically hashes a marking vector.
func markingKey(m []int) string {
	buf := make([]byte, 0, len(m)*2)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range m {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(v))]...)
	}
	return string(buf)
}
