package sanalyze

import (
	"fmt"
	"io"
)

// Write renders the report for humans. The layout is deliberately
// stable — `vcpusim vet -structural` goldens diff against it.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "model %s: %d places, %d activities\n", r.Model, r.Places, r.Activities)
	if len(r.Disabled) > 0 {
		fmt.Fprintf(w, "  disabled: %s\n", joinComma(r.Disabled))
	}

	certified := 0
	for _, b := range r.Bounds {
		if b.Bound >= 0 {
			certified++
		}
	}
	verdict := "PROVED"
	if certified < len(r.Bounds) {
		verdict = "UNPROVEN"
	}
	fmt.Fprintf(w, "  boundedness: %s (%d/%d places certified)\n", verdict, certified, len(r.Bounds))
	width := 0
	for _, b := range r.Bounds {
		if len(b.Place) > width {
			width = len(b.Place)
		}
	}
	for _, b := range r.Bounds {
		if b.Bound < 0 {
			fmt.Fprintf(w, "    %-*s  unbounded?  %s\n", width, b.Place, b.Detail)
			continue
		}
		fmt.Fprintf(w, "    %-*s  ≤ %-4d %s (%s)\n", width, b.Place, b.Bound, b.Method, b.Detail)
	}

	switch r.Deadlock.Status {
	case "deadlock-free":
		fmt.Fprintf(w, "  deadlock: PROVED FREE via %s (%s)\n", r.Deadlock.Method, r.Deadlock.Detail)
	case "deadlock":
		fmt.Fprintf(w, "  deadlock: FOUND (%s)\n", r.Deadlock.Detail)
	default:
		fmt.Fprintf(w, "  deadlock: UNPROVEN (%s)\n", r.Deadlock.Detail)
	}

	if len(r.PInvariants) > 0 {
		fmt.Fprintf(w, "  P-invariants: %d semipositive\n", len(r.PInvariants))
		for _, iv := range r.PInvariants {
			fmt.Fprintf(w, "    %s = %d\n", iv, iv.Value)
		}
	} else {
		fmt.Fprintf(w, "  P-invariants: none\n")
	}
	if len(r.TInvariants) > 0 {
		fmt.Fprintf(w, "  T-invariants: %d semipositive\n", len(r.TInvariants))
		for _, iv := range r.TInvariants {
			fmt.Fprintf(w, "    %s\n", iv)
		}
	}
	for _, c := range r.Conservation {
		fmt.Fprintf(w, "  conservation: %s OK\n", c)
	}

	if r.Reach.Ran {
		state := "complete"
		if !r.Reach.Complete {
			state = "incomplete"
		}
		fmt.Fprintf(w, "  reachability: %s (%d states, %d firings)\n", state, r.Reach.States, r.Reach.Firings)
	} else {
		fmt.Fprintf(w, "  reachability: skipped (%s)\n", r.Reach.SkipReason)
	}

	if len(r.Findings) == 0 {
		fmt.Fprintf(w, "  findings: none\n")
		return
	}
	fmt.Fprintf(w, "  findings: %d\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "    %s\n", f)
	}
}

func joinComma(items []string) string {
	out := ""
	for i, s := range items {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
