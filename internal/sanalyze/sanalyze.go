// Package sanalyze is the structural-analysis engine for SAN models. It
// works on the plain-data san.Structure snapshot — the same documented
// surface package sanlint checks for shape defects — but goes further and
// proves properties of the net:
//
//   - P- and T-invariants are computed from the documented incidence
//     matrix with the Farkas variant of integer Gaussian elimination;
//     semipositive P-invariants certify boundedness and conservation of
//     token populations (PCPU count, fault budgets, lock tokens).
//   - Per-place boundedness verdicts combine several certificates:
//     invariant cover, constant/non-increasing incidence rows, a drain
//     certificate for clock-tick places emptied by an instantaneous
//     activity, declared (runtime-enforced) capacities, and — on pure-arc
//     nets — exact bounds from explicit-state reachability.
//   - Bounded explicit-state reachability explores pure-arc nets under a
//     deterministic state budget with canonical marking hashing. It
//     detects deadlocks, dead activities, and unbounded places (via
//     Karp–Miller strict domination along the search path) and prints
//     counterexamples as firing sequences.
//   - Declared conservation laws (san.Model.DeclareConservation) are
//     verified against the incidence matrix: every documented activity
//     effect must be orthogonal to the declared weight vector.
//   - A dynamic conformance check (Conformance) replays an instance with
//     firing hooks and verifies that gate code changes markings exactly
//     as the documented links promise, closing the gap between opaque
//     gate closures and the structural model the other passes reason on.
//
// Gate code is opaque Go, so the engine is honest about what it can
// prove: facts derived from counted arcs are exact; facts derived from
// LinkN declarations or capacities hold provided the conformance check
// (which is part of `vcpusim vet -structural`) passes.
package sanalyze

import (
	"fmt"
	"sort"

	"vcpusim/internal/san"
)

// Default analysis budgets. All budgets are deterministic (state and
// firing counts, never wall-clock time) so reports are reproducible.
const (
	DefaultMaxStates    = 1 << 16
	DefaultMaxFirings   = 1 << 20
	DefaultStabilizeCap = 4096
	maxInvariantRows    = 512
)

// Options configures an analysis run.
type Options struct {
	// Disabled lists activities excluded from the run (the engine-level
	// san.Instance.SetActivityEnabled set, e.g. a fault plan's dormant
	// injectors). Reachability never fires them and never reports them
	// dead; certificates that depend on an activity being able to fire
	// skip disabled activities.
	Disabled []string
	// MaxStates bounds the number of distinct markings reachability
	// explores; 0 means DefaultMaxStates.
	MaxStates int
	// MaxFirings bounds the total number of firings simulated across the
	// whole exploration; 0 means DefaultMaxFirings.
	MaxFirings int
	// StabilizeCap bounds a single instantaneous-firing chain, mirroring
	// the runtime livelock guard; 0 means DefaultStabilizeCap.
	StabilizeCap int
}

// Severity grades a finding.
type Severity int

// Severities.
const (
	Info Severity = iota + 1
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Check identifiers, stable across releases for machine consumers.
const (
	CheckUnbounded       = "unbounded-place"
	CheckBoundUnproven   = "bound-unproven"
	CheckDeadlock        = "deadlock"
	CheckDeadlockUnknown = "deadlock-unproven"
	CheckDeadActivity    = "dead-activity"
	CheckConservation    = "conservation"
	CheckLivelock        = "instant-livelock"
	CheckNegativeMarking = "negative-marking"
	CheckConformance     = "conformance"
	CheckBudget          = "analysis-budget"
)

// Finding is one structural problem (or caveat) detected by the engine.
type Finding struct {
	Check     string   `json:"check"`
	Severity  Severity `json:"-"`
	Component string   `json:"component"`
	Message   string   `json:"message"`
	// Trace is a counterexample firing sequence, when the finding came
	// out of reachability exploration.
	Trace []string `json:"trace,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s: %s", f.Severity, f.Check, f.Component, f.Message)
	if len(f.Trace) > 0 {
		s += fmt.Sprintf("\n    counterexample: %s", renderTrace(f.Trace))
	}
	return s
}

// renderTrace prints a firing sequence, eliding the middle of very long
// ones so reports stay readable.
func renderTrace(trace []string) string {
	const keep = 24
	if len(trace) <= keep {
		return joinArrows(trace)
	}
	head := trace[:keep/2]
	tail := trace[len(trace)-keep/2:]
	return fmt.Sprintf("%s → … %d more … → %s", joinArrows(head), len(trace)-keep, joinArrows(tail))
}

func joinArrows(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " → "
		}
		out += n
	}
	return out
}

// PlaceBound is the boundedness verdict for one token place.
type PlaceBound struct {
	Place string `json:"place"`
	// Bound is the proved upper bound on the marking; -1 when no
	// certificate applies.
	Bound int `json:"bound"`
	// Method names the certificate: "constant", "non-increasing",
	// "p-invariant", "drained", "capacity", or "reachability".
	Method string `json:"method,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Invariant is a semipositive P-invariant (or a T-invariant, with
// Weights keyed by activity name). For P-invariants, Value is the
// conserved weighted token sum under the initial marking.
type Invariant struct {
	Weights map[string]int64 `json:"weights"`
	Value   int64            `json:"value,omitempty"`
}

func (iv Invariant) String() string {
	names := make([]string, 0, len(iv.Weights))
	for n := range iv.Weights {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " + "
		}
		if w := iv.Weights[n]; w != 1 {
			out += fmt.Sprintf("%d·%s", w, n)
		} else {
			out += n
		}
	}
	return out
}

// ReachSummary reports what the explicit-state exploration did.
type ReachSummary struct {
	Ran bool `json:"ran"`
	// SkipReason explains why exploration did not run (gate-coupled
	// activities make the net non-executable symbolically).
	SkipReason string `json:"skip_reason,omitempty"`
	States     int    `json:"states,omitempty"`
	Firings    int    `json:"firings,omitempty"`
	// Complete reports that the entire reachability set was explored:
	// no state/firing budget was hit and no unbounded growth was cut.
	Complete bool `json:"complete,omitempty"`
}

// DeadlockVerdict is the model-level deadlock result.
type DeadlockVerdict struct {
	// Status is "deadlock-free", "deadlock", or "unproven".
	Status string `json:"status"`
	// Method is the certificate ("reachability" or "perpetual-activity")
	// when Status is "deadlock-free".
	Method string `json:"method,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Report is the full structural-analysis result for one model.
type Report struct {
	Model      string `json:"model"`
	Places     int    `json:"places"`
	Activities int    `json:"activities"`

	Bounds       []PlaceBound    `json:"bounds"`
	PInvariants  []Invariant     `json:"p_invariants,omitempty"`
	TInvariants  []Invariant     `json:"t_invariants,omitempty"`
	Conservation []string        `json:"conservation,omitempty"` // verified law descriptions
	Deadlock     DeadlockVerdict `json:"deadlock"`
	Reach        ReachSummary    `json:"reachability"`
	// Disabled lists activities excluded from the analysis via Options.
	Disabled []string  `json:"disabled,omitempty"`
	Findings []Finding `json:"findings,omitempty"`
}

// AllBounded reports whether every token place has a proved bound.
func (r *Report) AllBounded() bool {
	for _, b := range r.Bounds {
		if b.Bound < 0 {
			return false
		}
	}
	return true
}

// DeadlockFree reports whether deadlock freedom was proved.
func (r *Report) DeadlockFree() bool { return r.Deadlock.Status == "deadlock-free" }

// ErrorCount counts findings of Error severity.
func (r *Report) ErrorCount() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == Error {
			n++
		}
	}
	return n
}

// Analyze runs every structural pass over a model snapshot.
func Analyze(st san.Structure, opt Options) *Report {
	if opt.MaxStates <= 0 {
		opt.MaxStates = DefaultMaxStates
	}
	if opt.MaxFirings <= 0 {
		opt.MaxFirings = DefaultMaxFirings
	}
	if opt.StabilizeCap <= 0 {
		opt.StabilizeCap = DefaultStabilizeCap
	}
	n := buildNet(st, opt.Disabled)
	r := &Report{
		Model:      st.Name,
		Places:     len(n.places),
		Activities: len(n.acts),
		Disabled:   append([]string(nil), opt.Disabled...),
	}
	sort.Strings(r.Disabled)

	reach := explore(n, opt)
	r.Reach = reach.summary()
	r.Findings = append(r.Findings, reach.findings...)
	r.Findings = append(r.Findings, deadFindings(n, reach)...)

	r.PInvariants, r.TInvariants = invariants(n, r)
	checkConservation(n, st.Conservations, r)
	r.Bounds = boundPlaces(n, r.PInvariants, reach)
	for _, b := range r.Bounds {
		if b.Bound < 0 {
			r.Findings = append(r.Findings, Finding{
				Check:     CheckBoundUnproven,
				Severity:  Warning,
				Component: "place " + b.Place,
				Message:   b.Detail,
			})
		}
	}
	r.Deadlock = deadlockVerdict(n, reach)
	if r.Deadlock.Status == "unproven" {
		r.Findings = append(r.Findings, Finding{
			Check:     CheckDeadlockUnknown,
			Severity:  Warning,
			Component: "model " + st.Name,
			Message:   r.Deadlock.Detail,
		})
	}
	sortFindings(r.Findings)
	return r
}

// AnalyzeModel snapshots and analyzes a live model.
func AnalyzeModel(m *san.Model, opt Options) *Report {
	return Analyze(m.Structure(), opt)
}

// sortFindings orders findings by severity (errors first), then check,
// then component, keeping reports and goldens stable.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Check != fs[j].Check {
			return fs[i].Check < fs[j].Check
		}
		return fs[i].Component < fs[j].Component
	})
}
