package sanalyze_test

import (
	"strings"
	"testing"

	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sanalyze"
	"vcpusim/internal/sanalyze/fixtures"
)

// TestFixtures pins every seeded-defect fixture to its exact finding
// set and every clean counterpart to a silent report.
func TestFixtures(t *testing.T) {
	for _, fx := range fixtures.All() {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			m := fx.Build()
			if err := m.Err(); err != nil {
				t.Fatalf("fixture model invalid: %v", err)
			}
			r := sanalyze.AnalyzeModel(m, sanalyze.Options{Disabled: fx.Disabled})
			got := map[string]bool{}
			for _, f := range r.Findings {
				got[f.Check] = true
			}
			want := map[string]bool{}
			for _, c := range fx.Expect {
				want[c] = true
			}
			for c := range want {
				if !got[c] {
					t.Errorf("expected check %s to fire, findings: %v", c, r.Findings)
				}
			}
			for c := range got {
				if !want[c] {
					t.Errorf("unexpected check %s, findings: %v", c, r.Findings)
				}
			}
		})
	}
}

// TestCounterexampleTraces verifies defects come with a firing-sequence
// witness a human can replay.
func TestCounterexampleTraces(t *testing.T) {
	for _, fx := range fixtures.All() {
		if fx.Name != "deadlock-bad" && fx.Name != "unbounded-place-bad" {
			continue
		}
		r := sanalyze.AnalyzeModel(fx.Build(), sanalyze.Options{})
		found := false
		for _, f := range r.Findings {
			if f.Severity == sanalyze.Error && len(f.Trace) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error finding carries a counterexample trace: %v", fx.Name, r.Findings)
		}
	}
}

// TestDisabledNotDead is the SetActivityEnabled × vet regression: an
// activity excluded by a fault plan must not be reported dead, while
// the same net with the activity enabled proves it live.
func TestDisabledNotDead(t *testing.T) {
	var fx fixtures.Fixture
	for _, f := range fixtures.All() {
		if f.Name == "disabled-not-dead" {
			fx = f
		}
	}
	if fx.Build == nil {
		t.Fatal("disabled-not-dead fixture missing")
	}

	r := sanalyze.AnalyzeModel(fx.Build(), sanalyze.Options{Disabled: fx.Disabled})
	for _, f := range r.Findings {
		if f.Check == sanalyze.CheckDeadActivity {
			t.Errorf("disabled activity reported dead: %v", f)
		}
	}
	if !r.Reach.Complete {
		t.Errorf("exploration should complete with the activity excluded: %+v", r.Reach)
	}

	// Enabled, the same activity fires and the report is equally clean.
	r = sanalyze.AnalyzeModel(fx.Build(), sanalyze.Options{})
	if len(r.Findings) != 0 {
		t.Errorf("enabled variant should be clean, got %v", r.Findings)
	}
}

// TestPInvariantBound checks the invariant machinery on a weighted net:
// move consumes one a and produces two b, so 2a+b is invariant and both
// places get invariant-covered bounds.
func TestPInvariantBound(t *testing.T) {
	m := san.NewModel("weighted")
	s := m.Sub("s")
	a := s.Place("a", 3)
	b := s.Place("b", 0)
	s.TimedActivity("move", rng.Exponential{Rate: 1}).
		InputArc(a, 1).OutputArc(b, 2)
	s.TimedActivity("back", rng.Exponential{Rate: 1}).
		InputArc(b, 2).OutputArc(a, 1)
	r := sanalyze.AnalyzeModel(m, sanalyze.Options{})

	var bounds = map[string]int{}
	var methods = map[string]string{}
	for _, pb := range r.Bounds {
		bounds[pb.Place] = pb.Bound
		methods[pb.Place] = pb.Method
	}
	// 2a+b = 6: a ≤ 3, b ≤ 6.
	if bounds[a.Name()] != 3 || bounds[b.Name()] != 6 {
		t.Errorf("bounds = %v, want a≤3 b≤6 (invariants %v)", bounds, r.PInvariants)
	}
	if methods[a.Name()] != "p-invariant" || methods[b.Name()] != "p-invariant" {
		t.Errorf("methods = %v, want p-invariant", methods)
	}
	// The cycle is also a T-invariant: move twice, back once... in
	// token-count terms 1·move + 1·back is not neutral (move adds +1 net
	// to b per (1,1)? No: move: a-1 b+2; back: b-2 a+1; sum is zero).
	if len(r.TInvariants) == 0 {
		t.Errorf("expected a T-invariant for the move/back cycle")
	}
}

// TestDrainCertificate exercises the tick-place certificate: a timed
// clock marks the tick place, an instantaneous handler drains it.
func TestDrainCertificate(t *testing.T) {
	m := san.NewModel("drain")
	s := m.Sub("s")
	tick := s.Place("tick", 0)
	done := s.Place("done", 0)
	s.TimedActivity("clock", rng.Exponential{Rate: 1}).
		OutputArc(tick, 1)
	handler := s.InstantActivity("handle")
	handler.InputArc(tick, 1)
	// The handler's side effect goes through a gate so the net is not
	// pure-arc and reachability cannot supply the bound; its enabling
	// condition stays pure (only the counted arc), as the drain
	// certificate requires.
	handler.AddCase(func() float64 { return 1 }, func() { done.Add(0) })
	handler.Link(san.LinkOutput, done.Name())

	r := sanalyze.AnalyzeModel(m, sanalyze.Options{})
	if r.Reach.Ran {
		t.Fatalf("gate-coupled net must skip reachability: %+v", r.Reach)
	}
	var tickBound sanalyze.PlaceBound
	for _, b := range r.Bounds {
		if b.Place == tick.Name() {
			tickBound = b
		}
	}
	if tickBound.Method != "drained" || tickBound.Bound != 1 {
		t.Errorf("tick bound = %+v, want drained ≤ 1", tickBound)
	}

	// Disabling the drain activity must void the certificate.
	r = sanalyze.AnalyzeModel(m, sanalyze.Options{Disabled: []string{handler.Name()}})
	for _, b := range r.Bounds {
		if b.Place == tick.Name() && b.Method == "drained" {
			t.Errorf("drain certificate must not use a disabled activity: %+v", b)
		}
	}
}

// TestCapacityCertificate: a declared capacity is the fallback when no
// structural certificate applies.
func TestCapacityCertificate(t *testing.T) {
	m := san.NewModel("cap")
	s := m.Sub("s")
	q := s.Place("q", 0)
	q.SetCapacity(4)
	act := s.TimedActivity("gated", rng.Exponential{Rate: 1})
	act.Predicate(func() bool { return q.Tokens() < 4 })
	act.AddCase(func() float64 { return 1 }, func() { q.Add(1) })
	act.Link(san.LinkOutput, q.Name())

	r := sanalyze.AnalyzeModel(m, sanalyze.Options{})
	var b sanalyze.PlaceBound
	for _, pb := range r.Bounds {
		if pb.Place == q.Name() {
			b = pb
		}
	}
	if b.Method != "capacity" || b.Bound != 4 {
		t.Errorf("bound = %+v, want capacity ≤ 4", b)
	}
}

// TestPerpetualActivityCertificate: a clock with no enabling condition
// proves deadlock freedom on a net reachability cannot touch.
func TestPerpetualActivityCertificate(t *testing.T) {
	m := san.NewModel("perpetual")
	s := m.Sub("s")
	q := s.Place("q", 0)
	clock := s.TimedActivity("clock", rng.Exponential{Rate: 1})
	clock.AddCase(func() float64 { return 1 }, func() {})
	clock.Link(san.LinkInput, q.Name())

	r := sanalyze.AnalyzeModel(m, sanalyze.Options{})
	if !r.DeadlockFree() || r.Deadlock.Method != "perpetual-activity" {
		t.Errorf("deadlock verdict = %+v, want perpetual-activity proof", r.Deadlock)
	}
	// Disabling the clock voids the certificate.
	r = sanalyze.AnalyzeModel(m, sanalyze.Options{Disabled: []string{clock.Name()}})
	if r.DeadlockFree() {
		t.Errorf("certificate must not rest on a disabled activity: %+v", r.Deadlock)
	}
}

// TestConformance verifies the dynamic link-conformance check: honest
// LinkN declarations pass, lying and undeclared gate writes fail.
func TestConformance(t *testing.T) {
	build := func(declare func(a *san.Activity, q *san.Place)) *san.Instance {
		m := san.NewModel("conf")
		s := m.Sub("s")
		q := s.Place("q", 0)
		sink := s.InstantActivity("sink")
		sink.InputArc(q, 2)
		act := s.TimedActivity("emit", rng.Exponential{Rate: 1})
		act.AddCase(func() float64 { return 1 }, func() { q.Add(1) })
		declare(act, q)
		prog, err := san.Compile(m)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		in, err := prog.NewInstance()
		if err != nil {
			t.Fatalf("instance: %v", err)
		}
		return in
	}

	honest := build(func(a *san.Activity, q *san.Place) {
		a.LinkN(san.LinkOutput, q.Name(), 1)
	})
	findings, checked, err := sanalyze.Conformance(honest, 50, 1)
	if err != nil {
		t.Fatalf("honest run: %v", err)
	}
	if checked == 0 {
		t.Fatal("no firings checked")
	}
	if len(findings) != 0 {
		t.Errorf("honest declaration flagged: %v", findings)
	}

	lying := build(func(a *san.Activity, q *san.Place) {
		a.LinkN(san.LinkOutput, q.Name(), 2) // gate actually adds 1
	})
	findings, _, err = sanalyze.Conformance(lying, 50, 1)
	if err != nil {
		t.Fatalf("lying run: %v", err)
	}
	if !hasCheck(findings, sanalyze.CheckConformance) {
		t.Errorf("lying declaration not flagged: %v", findings)
	}

	undeclared := build(func(a *san.Activity, q *san.Place) {})
	findings, _, err = sanalyze.Conformance(undeclared, 50, 1)
	if err != nil {
		t.Fatalf("undeclared run: %v", err)
	}
	if !hasCheck(findings, sanalyze.CheckConformance) {
		t.Errorf("undeclared write not flagged: %v", findings)
	}
	if !strings.Contains(findings[0].Message, "undeclared write") {
		t.Errorf("message should name the undeclared write: %v", findings[0])
	}
}

// TestNegativeMarking: two input arcs on one place check enabledness
// independently but consume cumulatively — the explorer must flag the
// resulting negative marking instead of exploring garbage.
func TestNegativeMarking(t *testing.T) {
	m := san.NewModel("negative")
	s := m.Sub("s")
	q := s.Place("q", 1)
	a := s.TimedActivity("double", rng.Exponential{Rate: 1})
	a.InputArc(q, 1)
	a.InputArc(q, 1)
	r := sanalyze.AnalyzeModel(m, sanalyze.Options{})
	if !hasCheck(r.Findings, sanalyze.CheckNegativeMarking) {
		t.Errorf("negative marking not flagged: %v", r.Findings)
	}
}

// TestBudget: exceeding the state budget must degrade honestly — the
// report marks exploration incomplete instead of claiming proofs.
func TestBudget(t *testing.T) {
	m := san.NewModel("budget")
	s := m.Sub("s")
	// A 3-place counter with 12 tokens has hundreds of states.
	p1 := s.Place("p1", 12)
	p2 := s.Place("p2", 0)
	p3 := s.Place("p3", 0)
	s.TimedActivity("ab", rng.Exponential{Rate: 1}).InputArc(p1, 1).OutputArc(p2, 1)
	s.TimedActivity("bc", rng.Exponential{Rate: 1}).InputArc(p2, 1).OutputArc(p3, 1)
	s.TimedActivity("ca", rng.Exponential{Rate: 1}).InputArc(p3, 1).OutputArc(p1, 1)
	r := sanalyze.AnalyzeModel(m, sanalyze.Options{MaxStates: 10})
	if r.Reach.Complete {
		t.Errorf("10-state budget cannot complete: %+v", r.Reach)
	}
	if !r.Reach.Ran {
		t.Errorf("exploration should still run: %+v", r.Reach)
	}
	// The invariant certificate still bounds all three places.
	for _, b := range r.Bounds {
		if b.Bound != 12 || b.Method != "p-invariant" {
			t.Errorf("invariant bound survives budget cut: %+v", b)
		}
	}
	// Dead-activity verdicts are suppressed on incomplete exploration.
	if hasCheck(r.Findings, sanalyze.CheckDeadActivity) {
		t.Errorf("dead-activity claimed on incomplete exploration: %v", r.Findings)
	}
}

// TestReportStable renders a report twice and requires identical bytes
// (map iteration must not leak into the output).
func TestReportStable(t *testing.T) {
	fx := fixtures.All()[0]
	render := func() string {
		var sb strings.Builder
		sanalyze.AnalyzeModel(fx.Build(), sanalyze.Options{}).Write(&sb)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("unstable report:\n%s\n---\n%s", a, b)
	}
}

func hasCheck(fs []sanalyze.Finding, check string) bool {
	for _, f := range fs {
		if f.Check == check {
			return true
		}
	}
	return false
}
