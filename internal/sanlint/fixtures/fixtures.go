// Package fixtures holds small SAN models with deliberately seeded
// modeling defects, one positive (defective) and one negative (clean)
// fixture per sanlint check. They serve three purposes: unit-test the
// analyzer, pin its behavior through the golden file in
// internal/sanlint/testdata, and let `vcpusim vet -fixtures` demonstrate
// every check end to end.
//
// The models are analyzed statically and never simulated — several of the
// defective ones would livelock or fail immediately if run.
package fixtures

import (
	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sanlint"
)

// Fixture is one named model with its expected analyzer outcome.
type Fixture struct {
	// Name identifies the fixture; "-bad" fixtures seed a defect, "-ok"
	// fixtures are the matching clean variant.
	Name string
	// Expect is the exact set of check identifiers Analyze must report
	// (order-insensitive, duplicates collapsed); empty means the model
	// must lint clean.
	Expect []string
	// Build constructs the model.
	Build func() *san.Model
}

// All returns every fixture, defective and clean, in a fixed order.
func All() []Fixture {
	return []Fixture{
		{
			Name:   "case-weights-bad",
			Expect: []string{sanlint.CheckCaseWeights},
			Build: func() *san.Model {
				m, s, p := base("case_weights_bad")
				act := s.TimedActivity("act", rng.Exponential{Rate: 1})
				act.InputArc(p, 1)
				act.OutputArc(p, 1)
				act.AddCase(weight(0.3), func() {})
				act.AddCase(weight(0.5), func() {}) // sums to 0.8, not 1
				return m
			},
		},
		{
			Name: "case-weights-ok",
			Build: func() *san.Model {
				m, s, p := base("case_weights_ok")
				act := s.TimedActivity("act", rng.Exponential{Rate: 1})
				act.InputArc(p, 1)
				act.OutputArc(p, 1)
				act.AddCase(weight(0.3), func() {})
				act.AddCase(weight(0.7), func() {})
				return m
			},
		},
		{
			Name:   "unknown-link-bad",
			Expect: []string{sanlint.CheckUnknownLink},
			Build: func() *san.Model {
				m, s, p := base("unknown_link_bad")
				act := cycler(s, p)
				act.Link(san.LinkInput, "s/no_such_place") // typo'd place name
				return m
			},
		},
		{
			Name: "unknown-link-ok",
			Build: func() *san.Model {
				m, s, p := base("unknown_link_ok")
				act := cycler(s, p)
				act.Link(san.LinkInput, p.Name())
				return m
			},
		},
		{
			Name:   "never-read-bad",
			Expect: []string{sanlint.CheckNeverRead},
			Build: func() *san.Model {
				m, s, p := base("never_read_bad")
				sink := s.Place("sink", 0)
				act := cycler(s, p)
				act.OutputArc(sink, 1) // tokens accumulate, nothing reads them
				return m
			},
		},
		{
			Name: "never-read-ok",
			Build: func() *san.Model {
				m, s, p := base("never_read_ok")
				sink := s.Place("sink", 0)
				act := cycler(s, p)
				act.OutputArc(sink, 1)
				drain := s.TimedActivity("drain", rng.Exponential{Rate: 1})
				drain.InputArc(sink, 1)
				return m
			},
		},
		{
			Name: "never-written-bad",
			// The initially empty, never-produced place also makes its
			// consumer structurally dead; both findings are expected.
			Expect: []string{sanlint.CheckNeverWritten, sanlint.CheckDeadActivity},
			Build: func() *san.Model {
				m, s, p := base("never_written_bad")
				cycler(s, p)
				empty := s.Place("empty", 0)
				starved := s.TimedActivity("starved", rng.Exponential{Rate: 1})
				starved.InputArc(empty, 1) // no activity ever writes empty
				return m
			},
		},
		{
			Name: "never-written-ok",
			Build: func() *san.Model {
				m, s, p := base("never_written_ok")
				cycler(s, p)
				stocked := s.Place("stocked", 3) // initial tokens cover the reads
				consumer := s.TimedActivity("consumer", rng.Exponential{Rate: 1})
				consumer.InputArc(stocked, 1)
				return m
			},
		},
		{
			Name:   "dead-activity-bad",
			Expect: []string{sanlint.CheckDeadActivity},
			Build: func() *san.Model {
				// Chicken-and-egg: ping needs a token in a (produced only
				// by pong), pong needs a token in b (produced only by
				// ping); both start empty, so neither can ever fire.
				m := san.NewModel("dead_activity_bad")
				s := m.Sub("s")
				pa := s.Place("a", 0)
				pb := s.Place("b", 0)
				live := s.Place("live", 1)
				cycler(s, live)
				ping := s.TimedActivity("ping", rng.Exponential{Rate: 1})
				ping.InputArc(pa, 1)
				ping.OutputArc(pb, 1)
				pong := s.TimedActivity("pong", rng.Exponential{Rate: 1})
				pong.InputArc(pb, 1)
				pong.OutputArc(pa, 1)
				return m
			},
		},
		{
			Name: "dead-activity-ok",
			Build: func() *san.Model {
				// Same shape, but a starts marked: ping fires, feeding
				// pong, which feeds ping again.
				m := san.NewModel("dead_activity_ok")
				s := m.Sub("s")
				pa := s.Place("a", 1)
				pb := s.Place("b", 0)
				live := s.Place("live", 1)
				cycler(s, live)
				ping := s.TimedActivity("ping", rng.Exponential{Rate: 1})
				ping.InputArc(pa, 1)
				ping.OutputArc(pb, 1)
				pong := s.TimedActivity("pong", rng.Exponential{Rate: 1})
				pong.InputArc(pb, 1)
				pong.OutputArc(pa, 1)
				return m
			},
		},
		{
			Name:   "instant-cycle-bad",
			Expect: []string{sanlint.CheckInstantCycle},
			Build: func() *san.Model {
				// Two instantaneous activities pass one token back and
				// forth; stabilization at t=0 would never terminate.
				m := san.NewModel("instant_cycle_bad")
				s := m.Sub("s")
				pa := s.Place("a", 1)
				pb := s.Place("b", 0)
				fwd := s.InstantActivity("fwd")
				fwd.InputArc(pa, 1)
				fwd.OutputArc(pb, 1)
				back := s.InstantActivity("back")
				back.InputArc(pb, 1)
				back.OutputArc(pa, 1)
				return m
			},
		},
		{
			Name: "instant-cycle-ok",
			Build: func() *san.Model {
				// The return edge is a timed activity, so every
				// stabilization pass terminates and time advances between
				// round trips.
				m := san.NewModel("instant_cycle_ok")
				s := m.Sub("s")
				pa := s.Place("a", 1)
				pb := s.Place("b", 0)
				fwd := s.InstantActivity("fwd")
				fwd.InputArc(pa, 1)
				fwd.OutputArc(pb, 1)
				back := s.TimedActivity("back", rng.Exponential{Rate: 1})
				back.InputArc(pb, 1)
				back.OutputArc(pa, 1)
				return m
			},
		},
		{
			Name:   "unshared-join-bad",
			Expect: []string{sanlint.CheckUnsharedJoin},
			Build: func() *san.Model {
				// An activity in submodel s2 consumes a place declared
				// only in s1 — the Join was never recorded.
				m := san.NewModel("unshared_join_bad")
				s1 := m.Sub("s1")
				s2 := m.Sub("s2")
				shared := s1.Place("shared", 1)
				cycler(s1, shared)
				poacher := s2.TimedActivity("poacher", rng.Exponential{Rate: 1})
				poacher.InputArc(shared, 1)
				return m
			},
		},
		{
			Name: "unshared-join-ok",
			Build: func() *san.Model {
				m := san.NewModel("unshared_join_ok")
				s1 := m.Sub("s1")
				s2 := m.Sub("s2")
				shared := s1.Place("shared", 1)
				cycler(s1, shared)
				s2.Share(shared) // the Join operation, declared
				consumer := s2.TimedActivity("consumer", rng.Exponential{Rate: 1})
				consumer.InputArc(shared, 1)
				return m
			},
		},
		{
			Name:   "reward-ref-bad",
			Expect: []string{sanlint.CheckRewardRef},
			Build: func() *san.Model {
				m, s, p := base("reward_ref_bad")
				cycler(s, p)
				m.AddRateReward("tokens", func() float64 { return float64(p.Tokens()) },
					"s/renamed_place") // stale reference after a rename
				return m
			},
		},
		{
			Name: "reward-ref-ok",
			Build: func() *san.Model {
				m, s, p := base("reward_ref_ok")
				cycler(s, p)
				m.AddRateReward("tokens", func() float64 { return float64(p.Tokens()) },
					p.Name())
				return m
			},
		},
		{
			Name:   "isolated-place-bad",
			Expect: []string{sanlint.CheckIsolatedPlace},
			Build: func() *san.Model {
				m, s, p := base("isolated_place_bad")
				cycler(s, p)
				s.Place("forgotten", 2) // nothing links or measures it
				return m
			},
		},
		{
			Name: "isolated-place-ok",
			Build: func() *san.Model {
				m, s, p := base("isolated_place_ok")
				cycler(s, p)
				watched := s.Place("watched", 2)
				m.AddRateReward("watched_tokens",
					func() float64 { return float64(watched.Tokens()) }, watched.Name())
				return m
			},
		},
	}
}

// weight wraps a constant case weight.
func weight(w float64) func() float64 {
	return func() float64 { return w }
}

// base creates a model with one submodel and one marked place.
func base(name string) (*san.Model, *san.Sub, *san.Place) {
	m := san.NewModel(name)
	s := m.Sub("s")
	p := s.Place("p", 1)
	return m, s, p
}

// cycler adds a timed activity that consumes and reproduces one token of p,
// keeping p live (read and written) without involving other places.
func cycler(s *san.Sub, p *san.Place) *san.Activity {
	act := s.TimedActivity("cycle_"+shortName(p), rng.Exponential{Rate: 1})
	act.InputArc(p, 1)
	act.OutputArc(p, 1)
	return act
}

// shortName strips the submodel prefix for component naming.
func shortName(p *san.Place) string {
	name := p.Name()
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
