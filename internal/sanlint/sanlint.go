// Package sanlint statically verifies SAN models before any replication
// runs, substituting for the model checks the closed-source Möbius tool
// performs on composed models. It analyzes the plain-data structure
// snapshot a model exports (san.Structure): documented arcs, join
// relations, initial markings, case weights, and reward references.
//
// Gate predicates and output functions are opaque Go closures, so every
// check reasons over the documented structure only. The checks are
// conservative: a diagnostic always points at a structural defect or at
// missing Link/Share/reward-reference documentation — both are worth
// fixing, because the documented structure is what DOT export, structural
// tests, and this analyzer see.
package sanlint

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vcpusim/internal/san"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota + 1
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Check identifiers, stable across releases so tooling can filter on them.
const (
	// CheckCaseWeights: an activity's case weights are negative, all zero,
	// or do not sum to 1 under the initial marking.
	CheckCaseWeights = "case-weights"
	// CheckUnknownLink: a documented link references a place name that
	// does not exist in the model.
	CheckUnknownLink = "unknown-link"
	// CheckNeverRead: a place is written by activities but read by none
	// and referenced by no reward variable.
	CheckNeverRead = "place-never-read"
	// CheckNeverWritten: an initially empty place is read by activities
	// but written by none.
	CheckNeverWritten = "place-never-written"
	// CheckDeadActivity: an activity can never be enabled under the
	// initial marking (reachability over the documented-arc structural
	// approximation).
	CheckDeadActivity = "dead-activity"
	// CheckInstantCycle: instantaneous activities form a token cycle that
	// could livelock marking stabilization.
	CheckInstantCycle = "instant-cycle"
	// CheckUnsharedJoin: an activity uses a place that is not shared
	// (joined) into the activity's submodel.
	CheckUnsharedJoin = "unshared-join"
	// CheckRewardRef: a reward variable references an unknown place or
	// activity.
	CheckRewardRef = "reward-ref"
	// CheckIsolatedPlace: a place has no links and no reward references.
	CheckIsolatedPlace = "isolated-place"
)

// Diagnostic is one structured finding.
type Diagnostic struct {
	// Check is the stable identifier of the rule that fired.
	Check string
	// Severity grades the finding.
	Severity Severity
	// Component is the fully qualified name of the offending component.
	Component string
	// Message explains the finding.
	Message string
}

// String renders the diagnostic in a grep-friendly single line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Check, d.Component, d.Message)
}

// weightTolerance is the slack allowed when comparing a case-weight sum
// against 1.
const weightTolerance = 1e-9

// AnalyzeModel snapshots the model's structure and analyzes it. Run it on a
// freshly built model, before any replication.
func AnalyzeModel(m *san.Model) []Diagnostic {
	return Analyze(m.Structure())
}

// Analyze runs every check against the structure snapshot and returns the
// findings in a deterministic order (definition order within each check,
// checks in a fixed sequence).
func Analyze(st san.Structure) []Diagnostic {
	a := newAnalysis(st)
	a.checkCaseWeights()
	a.checkLinks() // unknown-link and unshared-join
	a.checkPlaceFlow()
	a.checkDeadActivities()
	a.checkInstantCycles()
	a.checkRewardRefs()
	return a.diags
}

// analysis carries the indexed structure and accumulated diagnostics.
type analysis struct {
	st       san.Structure
	place    map[string]*san.PlaceInfo
	activity map[string]bool
	// readBy / writtenBy count documented links per place name.
	readBy    map[string]int
	writtenBy map[string]int
	// rewardRefs marks every name a reward variable references.
	rewardRefs map[string]bool
	diags      []Diagnostic
}

func newAnalysis(st san.Structure) *analysis {
	a := &analysis{
		st:         st,
		place:      make(map[string]*san.PlaceInfo, len(st.Places)),
		activity:   make(map[string]bool, len(st.Activities)),
		readBy:     make(map[string]int),
		writtenBy:  make(map[string]int),
		rewardRefs: make(map[string]bool),
	}
	for i := range st.Places {
		a.place[st.Places[i].Name] = &st.Places[i]
	}
	for _, act := range st.Activities {
		a.activity[act.Name] = true
		for _, l := range act.Links {
			switch l.Kind {
			case san.LinkInput:
				a.readBy[l.Place]++
			case san.LinkOutput:
				a.writtenBy[l.Place]++
			}
		}
	}
	for _, r := range st.Rewards {
		for _, ref := range r.Refs {
			a.rewardRefs[ref] = true
		}
		if r.Activity != "" {
			a.rewardRefs[r.Activity] = true
		}
	}
	return a
}

func (a *analysis) report(check string, sev Severity, component, format string, args ...any) {
	a.diags = append(a.diags, Diagnostic{
		Check:     check,
		Severity:  sev,
		Component: component,
		Message:   fmt.Sprintf(format, args...),
	})
}

// submodelOf returns the component's submodel (the prefix before the first
// '/'), or "" for unqualified names.
func submodelOf(name string) string {
	if sub, _, found := strings.Cut(name, "/"); found {
		return sub
	}
	return ""
}

// checkCaseWeights verifies that every multi-case activity's weights,
// evaluated under the initial marking, are non-negative, not all zero, and
// sum to 1 (case weights are the paper's case probabilities; the runtime
// normalizes them, but a sum away from 1 almost always means a forgotten
// case or a typo).
func (a *analysis) checkCaseWeights() {
	for _, act := range a.st.Activities {
		if len(act.Cases) < 2 {
			continue // zero or one case: the implicit/sole case always fires
		}
		sum := 0.0
		negative := false
		for i, c := range act.Cases {
			if c.Weight < 0 || math.IsNaN(c.Weight) {
				a.report(CheckCaseWeights, Error, act.Name,
					"case %d has invalid weight %g", i, c.Weight)
				negative = true
				continue
			}
			sum += c.Weight
		}
		switch {
		case negative:
			// Already reported per case.
		case sum <= 0:
			a.report(CheckCaseWeights, Error, act.Name,
				"all %d case weights are zero under the initial marking", len(act.Cases))
		case math.Abs(sum-1) > weightTolerance:
			a.report(CheckCaseWeights, Warning, act.Name,
				"case probabilities sum to %g, not 1", sum)
		}
	}
}

// checkLinks verifies that every documented link targets an existing place
// and that the place is joined into the linking activity's submodel.
func (a *analysis) checkLinks() {
	for _, act := range a.st.Activities {
		sub := submodelOf(act.Name)
		for _, l := range act.Links {
			p, ok := a.place[l.Place]
			if !ok {
				a.report(CheckUnknownLink, Error, act.Name,
					"link references unknown place %q", l.Place)
				continue
			}
			joined := false
			for _, j := range p.Joins {
				if j == sub {
					joined = true
					break
				}
			}
			if !joined {
				a.report(CheckUnsharedJoin, Error, act.Name,
					"uses place %s, which is not shared into submodel %q (declared in %v; missing Join)",
					p.Name, sub, p.Joins)
			}
		}
	}
}

// checkPlaceFlow flags places whose documented token flow is one-sided:
// written but never read (tokens accumulate unobserved), or read while
// initially empty and never written (the read can never see a token). It
// also flags places with no links and no reward references at all.
func (a *analysis) checkPlaceFlow() {
	for _, p := range a.st.Places {
		reads, writes := a.readBy[p.Name], a.writtenBy[p.Name]
		switch {
		case reads == 0 && writes == 0:
			if !a.rewardRefs[p.Name] {
				a.report(CheckIsolatedPlace, Info, p.Name,
					"no activity links and no reward references; dead state")
			}
		case writes > 0 && reads == 0 && !a.rewardRefs[p.Name]:
			a.report(CheckNeverRead, Warning, p.Name,
				"written by %d activity link(s) but never read and not referenced by any reward", writes)
		case reads > 0 && writes == 0 && !p.Extended && p.Initial == 0:
			a.report(CheckNeverWritten, Warning, p.Name,
				"read by %d activity link(s) but initially empty and never written", reads)
		}
	}
}

// requiredInputs returns the counted places an activity needs tokens in
// before it can complete, per its documented input arcs (Tokens > 0).
// Read-only links (Tokens == 0, e.g. zero tests) and extended places do not
// gate enabling in this approximation.
func (a *analysis) requiredInputs(act san.ActivityInfo) []string {
	var req []string
	for _, l := range act.Links {
		if l.Kind != san.LinkInput || l.Tokens <= 0 {
			continue
		}
		if p, ok := a.place[l.Place]; ok && !p.Extended {
			req = append(req, l.Place)
		}
	}
	return req
}

// checkDeadActivities computes a reachability fixpoint over the documented
// arcs: a place is potentially markable if it starts marked or some
// potentially fireable activity writes it; an activity is potentially
// fireable if every input arc's place is potentially markable. Activities
// outside the fixpoint can never be enabled under the initial marking —
// the approximation ignores token counts and opaque predicates, so it
// over-approximates enabling and never flags a live activity.
func (a *analysis) checkDeadActivities() {
	marked := make(map[string]bool, len(a.st.Places))
	for _, p := range a.st.Places {
		if p.Extended || p.Initial > 0 {
			marked[p.Name] = true
		}
	}
	fireable := make(map[string]bool, len(a.st.Activities))
	for changed := true; changed; {
		changed = false
		for _, act := range a.st.Activities {
			if fireable[act.Name] {
				continue
			}
			ok := true
			for _, need := range a.requiredInputs(act) {
				if !marked[need] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			fireable[act.Name] = true
			changed = true
			for _, l := range act.Links {
				if l.Kind == san.LinkOutput && !marked[l.Place] {
					marked[l.Place] = true
				}
			}
		}
	}
	for _, act := range a.st.Activities {
		if !fireable[act.Name] {
			a.report(CheckDeadActivity, Warning, act.Name,
				"can never be enabled under the initial marking (unreachable input tokens: %s)",
				strings.Join(a.unreachableInputs(act, marked), ", "))
		}
	}
}

// unreachableInputs lists the required input places the fixpoint could not
// mark, for the dead-activity message.
func (a *analysis) unreachableInputs(act san.ActivityInfo, marked map[string]bool) []string {
	var out []string
	for _, need := range a.requiredInputs(act) {
		if !marked[need] {
			out = append(out, need)
		}
	}
	sort.Strings(out)
	return out
}

// checkInstantCycles finds token cycles among instantaneous activities:
// activity A feeds B when A writes a counted place B consumes. A strongly
// connected component with an internal edge can regenerate its own enabling
// tokens within a single stabilization pass and therefore livelock it.
func (a *analysis) checkInstantCycles() {
	// Build the feed graph over instantaneous activities.
	var nodes []string
	index := make(map[string]int)
	for _, act := range a.st.Activities {
		if act.Kind == san.Instantaneous {
			index[act.Name] = len(nodes)
			nodes = append(nodes, act.Name)
		}
	}
	if len(nodes) == 0 {
		return
	}
	consumers := make(map[string][]int) // place -> instantaneous consumers
	for _, act := range a.st.Activities {
		if act.Kind != san.Instantaneous {
			continue
		}
		for _, need := range a.requiredInputs(act) {
			consumers[need] = append(consumers[need], index[act.Name])
		}
	}
	edges := make([][]int, len(nodes))
	for _, act := range a.st.Activities {
		if act.Kind != san.Instantaneous {
			continue
		}
		from := index[act.Name]
		for _, l := range act.Links {
			if l.Kind != san.LinkOutput {
				continue
			}
			edges[from] = append(edges[from], consumers[l.Place]...)
		}
	}
	for _, scc := range stronglyConnected(edges) {
		cyclic := len(scc) > 1
		if !cyclic {
			for _, to := range edges[scc[0]] {
				if to == scc[0] {
					cyclic = true // self-loop
					break
				}
			}
		}
		if !cyclic {
			continue
		}
		names := make([]string, len(scc))
		for i, n := range scc {
			names[i] = nodes[n]
		}
		sort.Strings(names)
		a.report(CheckInstantCycle, Warning, names[0],
			"instantaneous activities form a token cycle that could livelock stabilization: %s",
			strings.Join(names, ", "))
	}
}

// checkRewardRefs verifies every documented reward reference names an
// existing place or activity.
func (a *analysis) checkRewardRefs() {
	for _, r := range a.st.Rewards {
		for _, ref := range r.Refs {
			if _, ok := a.place[ref]; ok {
				continue
			}
			if a.activity[ref] {
				continue
			}
			a.report(CheckRewardRef, Error, r.Name,
				"references unknown place or activity %q", ref)
		}
	}
}

// stronglyConnected returns the strongly connected components of the graph
// (Tarjan's algorithm, iterative), each as a slice of node indices.
func stronglyConnected(edges [][]int) [][]int {
	n := len(edges)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var (
		counter int
		stack   []int
		sccs    [][]int
	)
	type frame struct {
		node, edge int
	}
	for start := 0; start < n; start++ {
		if indexOf[start] != unvisited {
			continue
		}
		work := []frame{{node: start}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.node
			if f.edge == 0 {
				indexOf[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.edge < len(edges[v]) {
				w := edges[v][f.edge]
				f.edge++
				if indexOf[w] == unvisited {
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && indexOf[w] < low[v] {
					low[v] = indexOf[w]
				}
			}
			if advanced {
				continue
			}
			// All edges explored: close the frame.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == indexOf[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
