package sanlint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vcpusim/internal/core"
	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sanlint"
	"vcpusim/internal/sanlint/fixtures"
	"vcpusim/internal/sched"
	"vcpusim/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// checkSet collapses diagnostics to the unique set of check identifiers.
func checkSet(diags []sanlint.Diagnostic) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range diags {
		if !seen[d.Check] {
			seen[d.Check] = true
			out = append(out, d.Check)
		}
	}
	sort.Strings(out)
	return out
}

// TestFixtures verifies every seeded-defect fixture triggers exactly its
// expected checks and every clean fixture lints clean.
func TestFixtures(t *testing.T) {
	for _, fx := range fixtures.All() {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			diags := sanlint.AnalyzeModel(fx.Build())
			got := checkSet(diags)
			want := append([]string(nil), fx.Expect...)
			sort.Strings(want)
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Errorf("checks = %v, want %v\ndiagnostics:\n%s",
					got, want, renderDiags(diags))
			}
		})
	}
}

// TestFixturePairsCoverEveryCheck guards the fixture registry itself: each
// check identifier must appear in at least one defective fixture, and every
// defective fixture must have a clean counterpart.
func TestFixturePairsCoverEveryCheck(t *testing.T) {
	all := fixtures.All()
	byName := make(map[string]bool, len(all))
	covered := make(map[string]bool)
	for _, fx := range all {
		byName[fx.Name] = true
		for _, c := range fx.Expect {
			covered[c] = true
		}
	}
	checks := []string{
		sanlint.CheckCaseWeights, sanlint.CheckUnknownLink,
		sanlint.CheckNeverRead, sanlint.CheckNeverWritten,
		sanlint.CheckDeadActivity, sanlint.CheckInstantCycle,
		sanlint.CheckUnsharedJoin, sanlint.CheckRewardRef,
		sanlint.CheckIsolatedPlace,
	}
	for _, c := range checks {
		if !covered[c] {
			t.Errorf("no defective fixture covers check %q", c)
		}
	}
	for _, fx := range all {
		if len(fx.Expect) == 0 {
			continue
		}
		clean := strings.TrimSuffix(fx.Name, "-bad") + "-ok"
		if !byName[clean] {
			t.Errorf("defective fixture %q has no clean counterpart %q", fx.Name, clean)
		}
	}
}

// TestGolden pins the exact diagnostics (severity, component, message) for
// every fixture against testdata/fixtures.golden.
func TestGolden(t *testing.T) {
	var b strings.Builder
	for _, fx := range fixtures.All() {
		fmt.Fprintf(&b, "== %s\n", fx.Name)
		diags := sanlint.AnalyzeModel(fx.Build())
		if len(diags) == 0 {
			b.WriteString("clean\n")
		}
		for _, d := range diags {
			fmt.Fprintf(&b, "%s\n", d)
		}
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "fixtures.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from golden file; run go test ./internal/sanlint -run TestGolden -update\n--- got ---\n%s", got)
	}
}

// TestShippedSystemModelsClean verifies the analyzer reports zero
// diagnostics on the real composed virtualization-system models the
// framework ships — the paper's Figure 8 setup and a spinlock variant.
func TestShippedSystemModelsClean(t *testing.T) {
	configs := map[string]core.SystemConfig{
		"fig8": {
			PCPUs:     2,
			Timeslice: 30,
			VMs: []core.VMConfig{
				{Name: "VM1", VCPUs: 2, Workload: workload.Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5}},
				{Name: "VM2", VCPUs: 1, Workload: workload.Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5}},
				{Name: "VM3", VCPUs: 1, Workload: workload.Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5}},
			},
		},
		"spinlock": {
			PCPUs:     2,
			Timeslice: 30,
			VMs: []core.VMConfig{
				{Name: "VM1", VCPUs: 2, Workload: workload.Spec{
					Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5,
					SyncKind: workload.SyncSpinlock}},
			},
		},
	}
	for name, cfg := range configs {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			factory, err := sched.Factory("RRS", sched.Params{Timeslice: 30})
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.BuildSystem(cfg, factory(), rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			diags := sanlint.AnalyzeModel(sys.Model())
			if len(diags) != 0 {
				t.Errorf("shipped model %q has %d diagnostics:\n%s",
					name, len(diags), renderDiags(diags))
			}
		})
	}
}

// TestAnalyzeDeterministic verifies two analyses of the same model produce
// byte-identical output (the analyzer is part of the reproducibility
// contract).
func TestAnalyzeDeterministic(t *testing.T) {
	for _, fx := range fixtures.All() {
		a := renderDiags(sanlint.AnalyzeModel(fx.Build()))
		b := renderDiags(sanlint.AnalyzeModel(fx.Build()))
		if a != b {
			t.Fatalf("fixture %s: non-deterministic diagnostics:\n%s\nvs\n%s", fx.Name, a, b)
		}
	}
}

// TestSeverityString covers the severity names used in reports.
func TestSeverityString(t *testing.T) {
	cases := map[sanlint.Severity]string{
		sanlint.Info:        "info",
		sanlint.Warning:     "warning",
		sanlint.Error:       "error",
		sanlint.Severity(9): "Severity(9)",
	}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(sev), got, want)
		}
	}
}

// TestStructureSnapshot sanity-checks the san.Structure export the analyzer
// consumes: link token counts, joins, reward refs.
func TestStructureSnapshot(t *testing.T) {
	m := san.NewModel("snap")
	s1 := m.Sub("s1")
	s2 := m.Sub("s2")
	p := s1.Place("p", 2)
	s2.Share(p)
	act := s1.TimedActivity("act", rng.Deterministic{Value: 1})
	act.InputArc(p, 2)
	act.OutputArc(p, 1)
	m.AddRateReward("tokens", func() float64 { return float64(p.Tokens()) }, p.Name())

	st := m.Structure()
	if len(st.Places) != 1 || st.Places[0].Initial != 2 {
		t.Fatalf("places = %+v", st.Places)
	}
	if got := st.Places[0].Joins; len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Errorf("joins = %v", got)
	}
	if len(st.Activities) != 1 {
		t.Fatalf("activities = %+v", st.Activities)
	}
	links := st.Activities[0].Links
	if len(links) != 2 || links[0].Tokens != 2 || links[1].Tokens != 1 {
		t.Errorf("links = %+v, want token counts 2 and 1", links)
	}
	if len(st.Rewards) != 1 || len(st.Rewards[0].Refs) != 1 || st.Rewards[0].Refs[0] != "s1/p" {
		t.Errorf("rewards = %+v", st.Rewards)
	}
}

func renderDiags(diags []sanlint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
