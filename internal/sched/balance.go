package sched

import (
	"vcpusim/internal/core"
)

// Balance implements balance scheduling (Sukwong & Kim, EuroSys 2011), the
// VCPU-stacking-avoidance algorithm the paper's introduction discusses: it
// keeps per-PCPU run queues and never places two sibling VCPUs in the same
// run queue, so siblings are never serialized behind each other on one
// physical core. Each PCPU serves its own queue head round-robin.
//
// It is an extension beyond the paper's three evaluated algorithms,
// included to demonstrate the open scheduling-function interface.
type Balance struct {
	timeslice int64
	queues    [][]int // per-PCPU run queues of waiting VCPUs
	homes     map[int]int
}

var _ core.Scheduler = (*Balance)(nil)

// NewBalance returns a balance scheduler granting the given timeslice.
func NewBalance(timeslice int64) *Balance {
	return &Balance{timeslice: timeslice, homes: make(map[int]int)}
}

// Name implements core.Scheduler.
func (b *Balance) Name() string { return "Balance" }

// Schedule implements core.Scheduler.
func (b *Balance) Schedule(_ int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	if b.queues == nil {
		b.queues = make([][]int, len(pcpus))
	}
	// Enqueue newly inactive VCPUs onto the shortest run queue that holds
	// no sibling (the balance placement rule).
	for _, v := range vcpus {
		if v.Status != core.Inactive {
			continue
		}
		if _, queued := b.homes[v.ID]; queued {
			continue
		}
		q := b.pickQueue(v, vcpus)
		b.queues[q] = append(b.queues[q], v.ID)
		b.homes[v.ID] = q
	}
	// Each idle PCPU serves the head of its own run queue.
	for _, p := range pcpus {
		if !p.Idle() || len(b.queues[p.ID]) == 0 {
			continue
		}
		id := b.queues[p.ID][0]
		b.queues[p.ID] = b.queues[p.ID][1:]
		delete(b.homes, id)
		acts.Assign(id, p.ID, b.timeslice)
	}
}

// pickQueue returns the index of the shortest run queue containing no
// sibling of v; if every queue holds a sibling (more siblings than PCPUs
// cannot happen under the framework's VCPUs<=PCPUs constraint), it falls
// back to the globally shortest queue.
func (b *Balance) pickQueue(v core.VCPUView, vcpus []core.VCPUView) int {
	best, bestLen := -1, int(^uint(0)>>1)
	fallback, fallbackLen := 0, int(^uint(0)>>1)
	for q := range b.queues {
		// A queue's effective length counts waiting VCPUs; ties break
		// toward lower PCPU index for determinism.
		l := len(b.queues[q])
		if l < fallbackLen {
			fallback, fallbackLen = q, l
		}
		if b.queueHasSibling(q, v, vcpus) {
			continue
		}
		if l < bestLen {
			best, bestLen = q, l
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

// queueHasSibling reports whether run queue q holds a sibling of v.
func (b *Balance) queueHasSibling(q int, v core.VCPUView, vcpus []core.VCPUView) bool {
	for _, id := range b.queues[q] {
		if vcpus[id].VM == v.VM && id != v.ID {
			return true
		}
	}
	return false
}

// QueueLengths returns the current run-queue lengths (for tests).
func (b *Balance) QueueLengths() []int {
	lens := make([]int, len(b.queues))
	for i, q := range b.queues {
		lens[i] = len(q)
	}
	return lens
}
