package sched

import (
	"testing"

	"vcpusim/internal/core"
)

func TestBalanceName(t *testing.T) {
	if got := NewBalance(10).Name(); got != "Balance" {
		t.Fatalf("name = %q", got)
	}
}

func TestBalanceNeverStacksSiblings(t *testing.T) {
	// Two 2-VCPU VMs on 2 PCPUs: whenever queues are inspected, no run
	// queue may hold two siblings.
	b := NewBalance(5)
	h := newHarness(t, b, 2, 2, 2)
	for i := 0; i < 500; i++ {
		h.tick()
		for q := range b.queues {
			seen := map[int]bool{}
			for _, id := range b.queues[q] {
				vm := h.vcpus[id].VM
				if seen[vm] {
					t.Fatalf("t=%d: run queue %d stacks siblings of VM %d: %v", h.now, q, vm, b.queues[q])
				}
				seen[vm] = true
			}
		}
	}
}

func TestBalanceFairShares(t *testing.T) {
	h := newHarness(t, NewBalance(10), 2, 2, 2)
	h.run(4000)
	for id := 0; id < 4; id++ {
		h.assertShare(id, 0.5, 0.05)
	}
}

func TestBalanceUsesAllPCPUs(t *testing.T) {
	h := newHarness(t, NewBalance(10), 3, 2, 2, 2)
	h.run(300)
	for p := range h.pcpus {
		if h.pcpus[p].VCPU < 0 {
			t.Fatalf("PCPU %d idle under load", p)
		}
	}
}

func TestBalanceQueueLengths(t *testing.T) {
	b := NewBalance(5)
	h := newHarness(t, b, 1, 2)
	h.tick()
	lens := b.QueueLengths()
	if len(lens) != 1 {
		t.Fatalf("queue count = %d, want 1", len(lens))
	}
	// One VCPU runs, the sibling waits in the only queue (fallback
	// placement despite the sibling rule: no alternative queue exists).
	if lens[0] != 1 {
		t.Fatalf("waiting queue length = %d, want 1", lens[0])
	}
}

func TestBalancePrefersSiblingFreeQueue(t *testing.T) {
	b := NewBalance(5)
	// 2 PCPUs; queue 0 already holds VCPU 1 (VM 0). Its sibling VCPU 0
	// must be placed on queue 1 even though queue 0 is shorter after
	// accounting... both empty-length ties break to sibling-free.
	b.queues = [][]int{{1}, {}}
	b.homes = map[int]int{1: 0}
	vcpus := []core.VCPUView{
		{ID: 0, VM: 0, Sibling: 0, Status: core.Inactive, PCPU: -1},
		{ID: 1, VM: 0, Sibling: 1, Status: core.Inactive, PCPU: -1},
	}
	pcpus := []core.PCPUView{{ID: 0, VCPU: 8}, {ID: 1, VCPU: 9}} // both busy
	var acts core.Actions
	b.Schedule(0, vcpus, pcpus, &acts)
	if got := b.homes[0]; got != 1 {
		t.Fatalf("sibling placed on queue %d, want 1", got)
	}
}
