package sched

import (
	"testing"

	"vcpusim/internal/core"
)

// benchViews builds a mid-size system state for scheduler benchmarks.
func benchViews() ([]core.VCPUView, []core.PCPUView) {
	var vcpus []core.VCPUView
	id := 0
	for vm, size := range []int{2, 3, 2, 1} {
		for k := 0; k < size; k++ {
			vcpus = append(vcpus, core.VCPUView{
				ID: id, VM: vm, Sibling: k, Status: core.Inactive, PCPU: -1,
			})
			id++
		}
	}
	pcpus := make([]core.PCPUView, 4)
	for p := range pcpus {
		pcpus[p] = core.PCPUView{ID: p, VCPU: -1}
	}
	return vcpus, pcpus
}

func benchSchedule(b *testing.B, s core.Scheduler) {
	b.Helper()
	vcpus, pcpus := benchViews()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acts core.Actions
		s.Schedule(int64(i), vcpus, pcpus, &acts)
	}
}

func BenchmarkRoundRobinSchedule(b *testing.B) { benchSchedule(b, NewRoundRobin(30)) }

func BenchmarkStrictCoSchedule(b *testing.B) { benchSchedule(b, NewStrictCo(30)) }

func BenchmarkRelaxedCoSchedule(b *testing.B) {
	benchSchedule(b, NewRelaxedCo(RelaxedCoParams{Timeslice: 30}))
}

func BenchmarkBalanceSchedule(b *testing.B) { benchSchedule(b, NewBalance(30)) }

func BenchmarkCreditSchedule(b *testing.B) {
	benchSchedule(b, NewCredit(CreditParams{Timeslice: 30}))
}
