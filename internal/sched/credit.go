package sched

import (
	"sort"

	"vcpusim/internal/core"
)

// Credit is a proportional-share scheduler in the spirit of Xen's credit
// scheduler (Cherkasova et al., the comparison study the paper's related
// work cites): each VM has a weight; credits are replenished to VCPUs in
// proportion to their VM's weight every accounting period and burned while
// running; idle PCPUs go to the waiting VCPU with the most credit.
//
// It is an extension beyond the paper's three evaluated algorithms.
type Credit struct {
	timeslice int64
	period    int64
	weights   map[int]float64 // VM index -> weight (default 1)

	credits  []float64
	lastFill int64
}

var _ core.Scheduler = (*Credit)(nil)

// CreditParams configures the Credit scheduler.
type CreditParams struct {
	// Timeslice is the per-assignment timeslice in ticks.
	Timeslice int64
	// Period is the accounting period between credit refills; zero
	// selects 3x the timeslice.
	Period int64
	// Weights maps VM index to its share weight; missing VMs get 1.
	Weights map[int]float64
}

// NewCredit returns a proportional-share scheduler.
func NewCredit(p CreditParams) *Credit {
	if p.Period <= 0 {
		p.Period = 3 * p.Timeslice
	}
	return &Credit{timeslice: p.Timeslice, period: p.Period, weights: p.Weights}
}

// Name implements core.Scheduler.
func (c *Credit) Name() string { return "Credit" }

// Schedule implements core.Scheduler.
func (c *Credit) Schedule(now int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	if c.credits == nil {
		c.credits = make([]float64, len(vcpus))
		c.lastFill = now
	}
	// Burn one credit per running tick.
	for _, v := range vcpus {
		if v.Status.Active() {
			c.credits[v.ID]--
		}
	}
	// Refill once per period, in proportion to VM weight split across the
	// VM's VCPUs; cap accumulation at one period's worth to bound bursts.
	if now-c.lastFill >= c.period {
		c.lastFill = now
		byVM := core.SiblingsOf(vcpus)
		vms := core.VMs(vcpus)
		totalWeight := 0.0
		for _, vm := range vms {
			totalWeight += c.weight(vm)
		}
		if totalWeight > 0 {
			capacity := float64(c.period) * float64(len(pcpus))
			for _, vm := range vms {
				gang := byVM[vm]
				share := capacity * c.weight(vm) / totalWeight / float64(len(gang))
				for _, id := range gang {
					c.credits[id] += share
					if c.credits[id] > capacity {
						c.credits[id] = capacity
					}
				}
			}
		}
	}
	// Grant idle PCPUs to the richest waiting VCPUs.
	var waiting []int
	for _, v := range vcpus {
		if v.Status == core.Inactive {
			waiting = append(waiting, v.ID)
		}
	}
	sort.Slice(waiting, func(i, j int) bool {
		if c.credits[waiting[i]] != c.credits[waiting[j]] {
			return c.credits[waiting[i]] > c.credits[waiting[j]]
		}
		return waiting[i] < waiting[j]
	})
	idle := core.IdlePCPUs(pcpus)
	for i, p := range idle {
		if i >= len(waiting) {
			break
		}
		acts.Assign(waiting[i], p, c.timeslice)
	}
}

func (c *Credit) weight(vm int) float64 {
	if w, ok := c.weights[vm]; ok && w > 0 {
		return w
	}
	return 1
}

// Credits returns the current credit balance of a VCPU (for tests).
func (c *Credit) Credits(id int) float64 {
	if c.credits == nil || id < 0 || id >= len(c.credits) {
		return 0
	}
	return c.credits[id]
}
