package sched

import (
	"strings"
	"testing"
)

func TestCreditName(t *testing.T) {
	if got := NewCredit(CreditParams{Timeslice: 10}).Name(); got != "Credit" {
		t.Fatalf("name = %q", got)
	}
}

func TestCreditDefaultsToEqualShares(t *testing.T) {
	// Three 1-VCPU VMs on one PCPU, equal weights: equal shares.
	h := newHarness(t, NewCredit(CreditParams{Timeslice: 10}), 1, 1, 1, 1)
	h.run(6000)
	for id := 0; id < 3; id++ {
		h.assertShare(id, 1.0/3, 0.05)
	}
}

func TestCreditWeightsSkewShares(t *testing.T) {
	// VM0 weighted 3x: on one PCPU it should receive about 3/5 of the
	// time against two weight-1 VMs.
	c := NewCredit(CreditParams{
		Timeslice: 10,
		Weights:   map[int]float64{0: 3},
	})
	h := newHarness(t, c, 1, 1, 1, 1)
	h.run(10000)
	s := h.shares()
	if s[0] < 0.5 || s[0] > 0.7 {
		t.Fatalf("weighted VM share = %.3f, want ~0.6 (all %v)", s[0], fmtShares(s))
	}
	if s[1] > s[0] || s[2] > s[0] {
		t.Fatalf("weight-1 VMs outran the weight-3 VM: %v", fmtShares(s))
	}
}

func TestCreditSplitsVMShareAcrossVCPUs(t *testing.T) {
	// A 2-VCPU VM and a 1-VCPU VM, equal weights, one PCPU: the VM share
	// is split across its VCPUs, so each pair member gets ~25% and the
	// single ~50%.
	h := newHarness(t, NewCredit(CreditParams{Timeslice: 10}), 1, 2, 1)
	h.run(10000)
	h.assertShare(0, 0.25, 0.06)
	h.assertShare(1, 0.25, 0.06)
	h.assertShare(2, 0.5, 0.06)
}

func TestCreditFullProvisioning(t *testing.T) {
	h := newHarness(t, NewCredit(CreditParams{Timeslice: 10}), 3, 1, 1, 1)
	h.run(500)
	for id := 0; id < 3; id++ {
		h.assertShare(id, 1, 0.01)
	}
}

func TestCreditAccessorBounds(t *testing.T) {
	c := NewCredit(CreditParams{Timeslice: 10})
	if c.Credits(0) != 0 || c.Credits(-1) != 0 {
		t.Fatal("uninitialized credits should be 0")
	}
}

func TestRegistryKnownNames(t *testing.T) {
	for _, name := range []string{"RRS", "rrs", "SCS", "RCS", "Balance", "credit", "Round-Robin"} {
		f, err := Factory(name, Params{Timeslice: 10})
		if err != nil {
			t.Errorf("Factory(%q): %v", name, err)
			continue
		}
		if s := f(); s == nil || s.Name() == "" {
			t.Errorf("Factory(%q) built a bad scheduler", name)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := Factory("nope", Params{Timeslice: 10})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error %q does not name the input", err)
	}
}

func TestRegistryRejectsBadTimeslice(t *testing.T) {
	if _, err := Factory("RRS", Params{}); err == nil {
		t.Fatal("zero timeslice accepted")
	}
}

func TestRegistryFreshInstances(t *testing.T) {
	f, err := Factory("RRS", Params{Timeslice: 10})
	if err != nil {
		t.Fatal(err)
	}
	if f() == f() {
		t.Fatal("factory returned a shared instance")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		if _, err := Factory(n, Params{Timeslice: 10}); err != nil {
			t.Errorf("registered name %q does not resolve: %v", n, err)
		}
	}
}
