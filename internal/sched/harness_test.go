package sched

import (
	"fmt"
	"testing"

	"vcpusim/internal/core"
)

// harness is a miniature of the framework's hypervisor step used to unit
// test schedulers in isolation: no workloads, every VCPU always wants a
// PCPU, statuses are READY or INACTIVE. It mirrors the engine's tick
// ordering (runtime accounting, timeslice expiry, scheduling function,
// action application with validation).
type harness struct {
	t     *testing.T
	vcpus []core.VCPUView
	pcpus []core.PCPUView
	sched core.Scheduler
	now   int64
}

// newHarness builds a harness with the given VM sizes (VCPUs per VM).
func newHarness(t *testing.T, s core.Scheduler, pcpus int, vmSizes ...int) *harness {
	t.Helper()
	h := &harness{t: t, sched: s}
	id := 0
	for vm, size := range vmSizes {
		for k := 0; k < size; k++ {
			h.vcpus = append(h.vcpus, core.VCPUView{
				ID: id, VM: vm, Sibling: k,
				Status: core.Inactive, PCPU: -1, LastScheduledIn: -1,
			})
			id++
		}
	}
	for p := 0; p < pcpus; p++ {
		h.pcpus = append(h.pcpus, core.PCPUView{ID: p, VCPU: -1})
	}
	return h
}

// tick advances one hypervisor step.
func (h *harness) tick() {
	h.t.Helper()
	if h.now > 0 {
		for i := range h.vcpus {
			v := &h.vcpus[i]
			if v.PCPU < 0 {
				continue
			}
			v.Runtime++
			v.Timeslice--
			if v.Timeslice <= 0 {
				h.deschedule(i)
			}
		}
	}
	var acts core.Actions
	h.sched.Schedule(h.now, append([]core.VCPUView(nil), h.vcpus...),
		append([]core.PCPUView(nil), h.pcpus...), &acts)
	for _, id := range acts.Preempts() {
		if id < 0 || id >= len(h.vcpus) || h.vcpus[id].PCPU < 0 {
			h.t.Fatalf("t=%d: invalid preempt of VCPU %d", h.now, id)
		}
		h.deschedule(id)
	}
	for _, a := range acts.Assigns() {
		switch {
		case a.VCPU < 0 || a.VCPU >= len(h.vcpus):
			h.t.Fatalf("t=%d: assign of unknown VCPU %d", h.now, a.VCPU)
		case a.PCPU < 0 || a.PCPU >= len(h.pcpus):
			h.t.Fatalf("t=%d: assign to unknown PCPU %d", h.now, a.PCPU)
		case a.Timeslice < 1:
			h.t.Fatalf("t=%d: non-positive timeslice %d", h.now, a.Timeslice)
		case h.vcpus[a.VCPU].PCPU >= 0:
			h.t.Fatalf("t=%d: double assignment of VCPU %d", h.now, a.VCPU)
		case h.pcpus[a.PCPU].VCPU >= 0:
			h.t.Fatalf("t=%d: assignment to busy PCPU %d", h.now, a.PCPU)
		}
		v := &h.vcpus[a.VCPU]
		v.PCPU = a.PCPU
		v.Timeslice = a.Timeslice
		v.LastScheduledIn = h.now
		v.Status = core.Ready
		h.pcpus[a.PCPU].VCPU = a.VCPU
	}
	h.now++
}

func (h *harness) deschedule(id int) {
	v := &h.vcpus[id]
	h.pcpus[v.PCPU].VCPU = -1
	v.PCPU = -1
	v.Timeslice = 0
	v.Status = core.Inactive
}

// run advances n ticks.
func (h *harness) run(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		h.tick()
	}
}

// active reports whether VCPU id currently holds a PCPU.
func (h *harness) active(id int) bool { return h.vcpus[id].PCPU >= 0 }

// shares returns each VCPU's runtime share of elapsed time.
func (h *harness) shares() []float64 {
	out := make([]float64, len(h.vcpus))
	for i, v := range h.vcpus {
		out[i] = float64(v.Runtime) / float64(h.now-1)
	}
	return out
}

// assertShare checks one VCPU's runtime share within tolerance.
func (h *harness) assertShare(id int, want, tol float64) {
	h.t.Helper()
	got := h.shares()[id]
	if got < want-tol || got > want+tol {
		h.t.Errorf("VCPU %d share = %.3f, want %.3f ±%.3f (all: %v)",
			id, got, want, tol, fmtShares(h.shares()))
	}
}

func fmtShares(s []float64) string {
	out := "["
	for i, v := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.3f", v)
	}
	return out + "]"
}
