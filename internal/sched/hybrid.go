package sched

import (
	"fmt"
	"sort"
	"strings"

	"vcpusim/internal/core"
)

// Hybrid implements the hybrid scheduling framework of Weng et al. (VEE
// 2009), which the paper's related-work section discusses: VMs marked
// *concurrent* (parallel workloads that suffer from synchronization
// latency) are gang-scheduled with strict co-start/co-stop, while the
// remaining VMs' VCPUs are scheduled individually, round-robin, filling
// the PCPUs the gangs leave free. This captures the practical middle
// ground between the paper's SCS (all VMs gang-scheduled, heavy
// fragmentation) and RRS (no co-scheduling at all).
type Hybrid struct {
	timeslice  int64
	concurrent map[int]bool
	name       string
	next       int // round-robin pointer over schedulable entities
}

var _ core.Scheduler = (*Hybrid)(nil)

// HybridParams configures the hybrid scheduler.
type HybridParams struct {
	// Timeslice is the per-assignment timeslice in ticks.
	Timeslice int64
	// ConcurrentVMs lists the VM indices to gang-schedule.
	ConcurrentVMs []int
}

// NewHybrid returns a hybrid scheduler.
func NewHybrid(p HybridParams) *Hybrid {
	conc := make(map[int]bool, len(p.ConcurrentVMs))
	var ids []string
	for _, vm := range p.ConcurrentVMs {
		if !conc[vm] {
			ids = append(ids, fmt.Sprintf("%d", vm))
		}
		conc[vm] = true
	}
	sort.Strings(ids)
	name := "Hybrid"
	if len(ids) > 0 {
		name = "Hybrid(co:" + strings.Join(ids, ",") + ")"
	}
	return &Hybrid{timeslice: p.Timeslice, concurrent: conc, name: name}
}

// Name implements core.Scheduler.
func (h *Hybrid) Name() string { return h.name }

// entity is one schedulable unit: a whole gang or a single VCPU.
type entity struct {
	vcpus []int
}

// Schedule implements core.Scheduler.
func (h *Hybrid) Schedule(_ int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	byVM := core.SiblingsOf(vcpus)
	vms := core.VMs(vcpus)
	var entities []entity
	for _, vm := range vms {
		if h.concurrent[vm] {
			entities = append(entities, entity{vcpus: byVM[vm]})
			continue
		}
		for _, id := range byVM[vm] {
			entities = append(entities, entity{vcpus: []int{id}})
		}
	}
	if len(entities) == 0 {
		return
	}
	h.next %= len(entities)

	idle := core.IdlePCPUs(pcpus)
	scheduledFirst := -1
	for i := 0; i < len(entities) && len(idle) > 0; i++ {
		pos := (h.next + i) % len(entities)
		e := entities[pos]
		if len(e.vcpus) > len(idle) || !allInactive(e.vcpus, vcpus) {
			continue
		}
		for j, id := range e.vcpus {
			acts.Assign(id, idle[j], h.timeslice)
		}
		idle = idle[len(e.vcpus):]
		if scheduledFirst < 0 {
			scheduledFirst = pos
		}
	}
	if scheduledFirst >= 0 {
		h.next = (scheduledFirst + 1) % len(entities)
	}
}
