package sched

import (
	"strings"
	"testing"

	"vcpusim/internal/core"
	"vcpusim/internal/fastsim"
	"vcpusim/internal/rng"
	"vcpusim/internal/workload"
)

func newHybrid(ts int64, concurrent ...int) *Hybrid {
	return NewHybrid(HybridParams{Timeslice: ts, ConcurrentVMs: concurrent})
}

func TestHybridName(t *testing.T) {
	if got := newHybrid(10).Name(); got != "Hybrid" {
		t.Fatalf("name = %q", got)
	}
	if got := newHybrid(10, 2, 0).Name(); got != "Hybrid(co:0,2)" {
		t.Fatalf("name = %q", got)
	}
}

func TestHybridGangInvariantForConcurrentVM(t *testing.T) {
	// VM0 (2 VCPUs) is concurrent; VM1/VM2 are singles. On 2 PCPUs the
	// concurrent VM must always be all-or-nothing.
	h := newHarness(t, newHybrid(5, 0), 2, 2, 1, 1)
	for i := 0; i < 400; i++ {
		h.tick()
		if h.active(0) != h.active(1) {
			t.Fatalf("t=%d: concurrent gang split", h.now)
		}
	}
}

func TestHybridSharesWithSinglesBackfill(t *testing.T) {
	// Entities: gang{v0,v1}, v2, v3 on 2 PCPUs. The entity rotation gives
	// the gang one wave in three and the singles (which backfill each
	// other's waves) two in three — the same per-entity fairness profile
	// the paper's Figure 8 shows for SCS at 2 PCPUs (pair 1/3, singles
	// 2/3).
	h := newHarness(t, newHybrid(10, 0), 2, 2, 1, 1)
	h.run(4000)
	h.assertShare(0, 1.0/3, 0.05)
	h.assertShare(1, 1.0/3, 0.05)
	h.assertShare(2, 2.0/3, 0.05)
	h.assertShare(3, 2.0/3, 0.05)
}

func TestHybridNonConcurrentNotGanged(t *testing.T) {
	// Without any concurrent VM, hybrid degenerates to an entity-RR that
	// can split gangs: a 2-VCPU VM on 1 PCPU still runs (unlike SCS).
	h := newHarness(t, newHybrid(5), 1, 2)
	h.run(200)
	if h.vcpus[0].Runtime == 0 && h.vcpus[1].Runtime == 0 {
		t.Fatal("non-concurrent VM starved on 1 PCPU")
	}
}

func TestHybridConcurrentVMStarvedWhenTooBig(t *testing.T) {
	// A concurrent 2-VCPU VM on 1 PCPU cannot co-start, like under SCS;
	// the single still runs.
	h := newHarness(t, newHybrid(5, 0), 1, 2, 1)
	h.run(500)
	if h.vcpus[0].Runtime != 0 || h.vcpus[1].Runtime != 0 {
		t.Fatal("oversized concurrent gang ran")
	}
	if h.vcpus[2].Runtime == 0 {
		t.Fatal("single VM starved")
	}
}

// TestHybridEliminatesSpinForConcurrentVM is the algorithm's point: mark
// the lock-heavy VM concurrent and its lock holders are never stranded,
// while an identical unmarked VM spins.
func TestHybridEliminatesSpinForConcurrentVM(t *testing.T) {
	wl := workload.Spec{
		Load:       rng.Uniform{Low: 1, High: 10},
		SyncEveryN: 2,
		SyncKind:   workload.SyncSpinlock,
	}
	cfg := core.SystemConfig{
		PCPUs:     4,
		Timeslice: 30,
		VMs: []core.VMConfig{
			{VCPUs: 3, Workload: wl},
			{VCPUs: 3, Workload: wl},
		},
	}
	// Spin attribution: derive per-VM spin by comparing busy vs progress.
	// Simpler: run twice — both marked vs none marked — and compare the
	// global spin fraction.
	run := func(concurrent ...int) float64 {
		f := func() core.Scheduler { return newHybrid(30, concurrent...) }
		var spin float64
		for seed := uint64(1); seed <= 3; seed++ {
			m, err := fastsim.RunReplication(cfg, f, 6000, seed)
			if err != nil {
				t.Fatal(err)
			}
			spin += m[core.SpinFractionMetric]
		}
		return spin / 3
	}
	noneMarked := run()
	allMarked := run(0, 1)
	if allMarked != 0 {
		t.Errorf("spin fraction with all VMs concurrent = %g, want 0", allMarked)
	}
	if noneMarked <= 0.01 {
		t.Errorf("spin fraction with no VM concurrent = %g, expected stranding", noneMarked)
	}
}

func TestHybridEngineParity(t *testing.T) {
	wl := workload.Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 3}
	cfg := core.SystemConfig{
		PCPUs:     3,
		Timeslice: 20,
		VMs: []core.VMConfig{
			{VCPUs: 2, Workload: wl},
			{VCPUs: 2, Workload: wl},
			{VCPUs: 1, Workload: wl},
		},
	}
	factory := func() core.Scheduler { return newHybrid(20, 0) }
	fast, err := fastsim.RunReplication(cfg, factory, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	san, err := core.RunReplication(cfg, factory, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for metric, v := range fast {
		if d := v - san[metric]; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: fast %g vs san %g", metric, v, san[metric])
		}
	}
}

func TestHybridInRegistry(t *testing.T) {
	f, err := Factory("Hybrid", Params{Timeslice: 10, ConcurrentVMs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f().Name(); !strings.HasPrefix(got, "Hybrid") {
		t.Fatalf("name = %q", got)
	}
}
