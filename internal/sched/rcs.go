package sched

import (
	"vcpusim/internal/core"
)

// RelaxedCo is the relaxed co-scheduling algorithm (the paper's RCS,
// VMware ESX 3/4 style). Outside co-scheduling mode it behaves like a fair
// rotation: single VCPUs may be scheduled whenever PCPUs are free ("in case
// there are not enough resources to perform a co-start, it allows a single
// VCPU to be scheduled"). The scheduler maintains a cumulative skew per
// VCPU that grows each tick the VCPU sits descheduled while a sibling
// runs. When a VM's maximum skew exceeds EnterSkew, the VM enters
// co-scheduling mode: all its running VCPUs are co-stopped and the VM "is
// forced to schedule in the co-start manner only" — its VCPUs may only be
// started all together — until the skew drops below ExitSkew.
//
// Skew decays one tick at a time while a VCPU runs, and also while its
// whole gang is stopped (no differential progress accrues when nobody
// runs); the latter is what lets a 2-VCPU VM on a single PCPU leave
// co-scheduling mode and run again, reproducing the paper's Figure 8
// observation that RCS schedules such a VM but gives its VCPUs less PCPU
// time than the 1-VCPU VMs receive. On adequately provisioned systems the
// skew never accumulates (siblings co-run in the natural rotation), so RCS
// behaves fairly — Figure 8's four-PCPU case — while the forced co-starts
// keep siblings co-running under contention, which is what keeps
// synchronization latency low in Figure 10 and PCPU utilization above 90 %
// in Figure 9.
type RelaxedCo struct {
	timeslice int64
	enterSkew int64
	exitSkew  int64

	queue  *vcpuQueue
	skew   []int64
	coMode []bool
}

var _ core.Scheduler = (*RelaxedCo)(nil)

// RelaxedCoParams configures RCS. Zero skew thresholds select defaults
// derived from the timeslice (EnterSkew = timeslice/3, ExitSkew =
// EnterSkew/2).
type RelaxedCoParams struct {
	Timeslice int64
	EnterSkew int64
	ExitSkew  int64
}

// NewRelaxedCo returns an RCS scheduler.
func NewRelaxedCo(p RelaxedCoParams) *RelaxedCo {
	if p.EnterSkew <= 0 {
		p.EnterSkew = p.Timeslice / 3
		if p.EnterSkew < 1 {
			p.EnterSkew = 1
		}
	}
	if p.ExitSkew <= 0 {
		p.ExitSkew = p.EnterSkew / 2
	}
	return &RelaxedCo{
		timeslice: p.Timeslice,
		enterSkew: p.EnterSkew,
		exitSkew:  p.ExitSkew,
		queue:     newVCPUQueue(),
	}
}

// Name implements core.Scheduler.
func (r *RelaxedCo) Name() string { return "RCS" }

// Schedule implements core.Scheduler.
func (r *RelaxedCo) Schedule(_ int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	byVM := core.SiblingsOf(vcpus)
	vms := core.VMs(vcpus)
	if r.skew == nil {
		r.skew = make([]int64, len(vcpus))
		r.coMode = make([]bool, len(vms))
	}

	r.updateSkews(vcpus, vms, byVM)
	r.updateCoMode(vms, byVM)

	vmIndex := make(map[int]int, len(vms))
	for i, vm := range vms {
		vmIndex[vm] = i
	}

	// Effective state for this tick: statuses after our own co-stops.
	inactive := make([]bool, len(vcpus))
	for _, v := range vcpus {
		inactive[v.ID] = v.Status == core.Inactive
	}
	idle := core.IdlePCPUs(pcpus)

	// Co-stop: entering or staying in co-mode forcibly deschedules every
	// running member; the gang may only return via a co-start.
	for vi, vm := range vms {
		if !r.coMode[vi] {
			continue
		}
		for _, id := range byVM[vm] {
			if !inactive[id] {
				acts.Preempt(id)
				inactive[id] = true
				idle = append(idle, vcpus[id].PCPU)
				r.queue.push(id)
			}
		}
	}

	r.queue.admitInactive(vcpus)

	// Assignment: walk the rotation queue. A VCPU of a co-mode VM may
	// only start if its whole gang fits in the idle PCPUs (co-start);
	// otherwise it is skipped and the VM waits. Everyone else
	// single-starts.
	for len(idle) > 0 {
		id, coStart, ok := r.nextEligible(vcpus, byVM, vmIndex, inactive, len(idle))
		if !ok {
			break
		}
		if coStart {
			for _, g := range byVM[vcpus[id].VM] {
				acts.Assign(g, idle[0], r.timeslice)
				idle = idle[1:]
				inactive[g] = false
				r.queue.remove(g)
			}
			continue
		}
		acts.Assign(id, idle[0], r.timeslice)
		idle = idle[1:]
		inactive[id] = false
		r.queue.remove(id)
	}
}

// updateSkews advances the cumulative skew counters: +1 per tick a VCPU is
// descheduled while a sibling runs; -1 (floored at zero) per tick it runs
// or while its whole gang is stopped.
func (r *RelaxedCo) updateSkews(vcpus []core.VCPUView, vms []int, byVM map[int][]int) {
	for _, vm := range vms {
		gang := byVM[vm]
		anyActive := false
		for _, id := range gang {
			if vcpus[id].Status.Active() {
				anyActive = true
				break
			}
		}
		for _, id := range gang {
			if !vcpus[id].Status.Active() && anyActive {
				r.skew[id]++
			} else if r.skew[id] > 0 {
				r.skew[id]--
			}
		}
	}
}

// updateCoMode applies the enter/exit hysteresis per VM.
func (r *RelaxedCo) updateCoMode(vms []int, byVM map[int][]int) {
	for vi, vm := range vms {
		var max int64
		for _, id := range byVM[vm] {
			if r.skew[id] > max {
				max = r.skew[id]
			}
		}
		if max > r.enterSkew {
			r.coMode[vi] = true
		} else if max < r.exitSkew {
			r.coMode[vi] = false
		}
	}
}

// nextEligible scans the queue head-first for the next schedulable VCPU.
// For a co-mode VM the whole gang must be inactive and fit in the idle
// PCPUs (returning coStart=true); otherwise the entry is skipped.
func (r *RelaxedCo) nextEligible(vcpus []core.VCPUView, byVM map[int][]int, vmIndex map[int]int, inactive []bool, idle int) (id int, coStart, ok bool) {
	for _, cand := range r.queue.snapshot() {
		if !inactive[cand] {
			r.queue.remove(cand)
			continue
		}
		vm := vcpus[cand].VM
		gang := byVM[vm]
		if len(gang) <= idle && gangInactive(gang, inactive) {
			// Best-effort co-start, opportunistic outside co-mode and
			// mandatory inside it.
			return cand, true, true
		}
		if !r.coMode[vmIndex[vm]] {
			return cand, false, true
		}
		// Forced co-start not possible this tick: the VM waits.
	}
	return 0, false, false
}

// gangInactive reports whether every gang member is (effectively) INACTIVE.
func gangInactive(gang []int, inactive []bool) bool {
	for _, id := range gang {
		if !inactive[id] {
			return false
		}
	}
	return true
}

// Skew returns the current cumulative skew of a VCPU (for tests and
// tracing).
func (r *RelaxedCo) Skew(id int) int64 {
	if id < 0 || id >= len(r.skew) {
		return 0
	}
	return r.skew[id]
}
