package sched

import (
	"testing"

	"vcpusim/internal/core"
)

func newRCS(ts, enter, exit int64) *RelaxedCo {
	return NewRelaxedCo(RelaxedCoParams{Timeslice: ts, EnterSkew: enter, ExitSkew: exit})
}

func TestRelaxedCoName(t *testing.T) {
	if got := NewRelaxedCo(RelaxedCoParams{Timeslice: 10}).Name(); got != "RCS" {
		t.Fatalf("name = %q", got)
	}
}

func TestRelaxedCoDefaults(t *testing.T) {
	r := NewRelaxedCo(RelaxedCoParams{Timeslice: 30})
	if r.enterSkew != 10 || r.exitSkew != 5 {
		t.Fatalf("defaults enter=%d exit=%d, want 10/5", r.enterSkew, r.exitSkew)
	}
	// Tiny timeslices still give positive thresholds.
	r = NewRelaxedCo(RelaxedCoParams{Timeslice: 1})
	if r.enterSkew < 1 || r.exitSkew < 0 {
		t.Fatalf("tiny timeslice thresholds enter=%d exit=%d", r.enterSkew, r.exitSkew)
	}
}

func TestRelaxedCoSingleStartWhenCoStartImpossible(t *testing.T) {
	// Unlike SCS, RCS schedules a 2-VCPU VM on one PCPU via single starts.
	h := newHarness(t, newRCS(30, 10, 5), 1, 2)
	h.run(100)
	if h.vcpus[0].Runtime == 0 && h.vcpus[1].Runtime == 0 {
		t.Fatal("RCS never single-started the gang on one PCPU")
	}
}

func TestRelaxedCoFigure8Penalty(t *testing.T) {
	// The paper's Figure 8 one-PCPU observation: the 2-VCPU VM runs but
	// its VCPUs receive clearly less than the 1-VCPU VMs'.
	h := newHarness(t, newRCS(30, 10, 5), 1, 2, 1, 1)
	h.run(12000)
	s := h.shares()
	pair := (s[0] + s[1]) / 2
	singles := (s[2] + s[3]) / 2
	if pair <= 0 {
		t.Fatalf("pair starved entirely: %v", fmtShares(s))
	}
	if pair >= singles*0.8 {
		t.Fatalf("no skew penalty: pair %.3f vs singles %.3f", pair, singles)
	}
}

func TestRelaxedCoFairWhenProvisioned(t *testing.T) {
	// With PCPUs = VCPUs everyone runs constantly; no skew accrues.
	h := newHarness(t, newRCS(30, 10, 5), 4, 2, 1, 1)
	h.run(1000)
	for id := 0; id < 4; id++ {
		h.assertShare(id, 1, 0.01)
	}
}

func TestRelaxedCoFairPairOfPairs(t *testing.T) {
	// Two 2-VCPU VMs on 2 PCPUs: natural co-run alternation, no skew.
	h := newHarness(t, newRCS(30, 10, 5), 2, 2, 2)
	h.run(4000)
	for id := 0; id < 4; id++ {
		h.assertShare(id, 0.5, 0.03)
	}
}

func TestRelaxedCoSkewAccrualAndDecay(t *testing.T) {
	r := newRCS(10, 100, 50) // thresholds high enough to stay out of co-mode
	vcpus := []core.VCPUView{
		{ID: 0, VM: 0, Sibling: 0, Status: core.Ready, PCPU: 0},
		{ID: 1, VM: 0, Sibling: 1, Status: core.Inactive, PCPU: -1},
	}
	pcpus := []core.PCPUView{{ID: 0, VCPU: 0}}
	for i := 0; i < 5; i++ {
		var acts core.Actions
		r.Schedule(int64(i), vcpus, pcpus, &acts)
	}
	if got := r.Skew(1); got != 5 {
		t.Fatalf("skew after 5 starved ticks = %d, want 5", got)
	}
	if got := r.Skew(0); got != 0 {
		t.Fatalf("running VCPU skew = %d, want 0", got)
	}
	// Whole gang stopped: skew decays. Keep the PCPU marked busy so the
	// assignment phase stays idle and only the skew update runs.
	vcpus[0].Status = core.Inactive
	vcpus[0].PCPU = -1
	pcpus[0].VCPU = 99
	for i := 5; i < 8; i++ {
		var acts core.Actions
		r.Schedule(int64(i), vcpus, pcpus, &acts)
	}
	if got := r.Skew(1); got != 2 {
		t.Fatalf("skew after 3 decay ticks = %d, want 2", got)
	}
}

func TestRelaxedCoCoStopPreemptsRunner(t *testing.T) {
	// One PCPU, gang of two: once the descheduled sibling's skew crosses
	// the enter threshold, the running sibling must be co-stopped.
	r := newRCS(100, 5, 2)
	h := newHarness(t, r, 1, 2)
	// v0 gets the PCPU at t=0 (queue head). With enter skew 5, the
	// co-stop must strike well before the 100-tick timeslice.
	for i := 0; i < 100; i++ {
		h.tick()
		if !h.active(0) && h.now > 1 {
			if h.now >= 100 {
				t.Fatal("co-stop never happened")
			}
			if h.vcpus[0].Runtime > 10 {
				t.Fatalf("co-stop too late: runtime %d with enter skew 5", h.vcpus[0].Runtime)
			}
			return
		}
	}
	t.Fatal("v0 ran the full horizon despite sibling starvation")
}

func TestRelaxedCoForcedCoStart(t *testing.T) {
	// 2 PCPUs, one gang of two plus two singles. Drive the gang into
	// co-mode, then verify the gang returns only via a co-start (both
	// siblings in the same tick).
	r := newRCS(20, 5, 2)
	h := newHarness(t, r, 2, 2, 1, 1)
	sawSplitStart := false
	prevActive := [2]bool{}
	for i := 0; i < 2000; i++ {
		h.tick()
		nowActive := [2]bool{h.active(0), h.active(1)}
		// Find gang transitions from fully inactive to partially active
		// while in co-mode.
		if r.coMode != nil && r.coMode[0] {
			if !prevActive[0] && !prevActive[1] && (nowActive[0] != nowActive[1]) {
				sawSplitStart = true
			}
		}
		prevActive = nowActive
	}
	if sawSplitStart {
		t.Fatal("gang single-started while in co-mode (forced co-start violated)")
	}
	if h.vcpus[0].Runtime == 0 {
		t.Fatal("gang never ran")
	}
}

func TestRelaxedCoOpportunisticCoStart(t *testing.T) {
	// Out of co-mode with enough idle PCPUs, a fully inactive gang is
	// co-started in one tick.
	r := newRCS(10, 50, 25)
	h := newHarness(t, r, 2, 2)
	h.tick()
	if !h.active(0) || !h.active(1) {
		t.Fatal("gang not co-started with ample PCPUs")
	}
	if h.vcpus[0].LastScheduledIn != h.vcpus[1].LastScheduledIn {
		t.Fatal("gang members started at different times")
	}
}

func TestRelaxedCoSkewAccessorBounds(t *testing.T) {
	r := newRCS(10, 5, 2)
	if r.Skew(-1) != 0 || r.Skew(99) != 0 {
		t.Fatal("out-of-range skew should be 0")
	}
}
