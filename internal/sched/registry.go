package sched

import (
	"fmt"
	"sort"
	"strings"

	"vcpusim/internal/core"
)

// Params carries the knobs shared by the built-in algorithms when
// constructed by name.
type Params struct {
	// Timeslice is the per-assignment timeslice in ticks.
	Timeslice int64
	// EnterSkew / ExitSkew configure RCS (zero selects defaults).
	EnterSkew int64
	ExitSkew  int64
	// Weights configures the Credit scheduler (per-VM shares).
	Weights map[int]float64
	// ConcurrentVMs configures the Hybrid scheduler (VM indices to
	// gang-schedule).
	ConcurrentVMs []int
}

// Names returns the registered algorithm names in stable order.
func Names() []string {
	names := []string{"RRS", "SCS", "RCS", "Balance", "Credit", "Hybrid"}
	sort.Strings(names)
	return names
}

// Factory returns a core.SchedulerFactory for the named algorithm
// ("RRS", "SCS", "RCS", "Balance", "Credit", or "Hybrid";
// case-insensitive). It returns an error for unknown names or invalid
// parameters.
func Factory(name string, p Params) (core.SchedulerFactory, error) {
	if p.Timeslice < 1 {
		return nil, fmt.Errorf("sched: timeslice must be at least one tick, got %d", p.Timeslice)
	}
	switch strings.ToUpper(name) {
	case "RRS", "ROUNDROBIN", "ROUND-ROBIN":
		return func() core.Scheduler { return NewRoundRobin(p.Timeslice) }, nil
	case "SCS", "STRICTCO", "STRICT-CO":
		return func() core.Scheduler { return NewStrictCo(p.Timeslice) }, nil
	case "RCS", "RELAXEDCO", "RELAXED-CO":
		return func() core.Scheduler {
			return NewRelaxedCo(RelaxedCoParams{
				Timeslice: p.Timeslice,
				EnterSkew: p.EnterSkew,
				ExitSkew:  p.ExitSkew,
			})
		}, nil
	case "BALANCE":
		return func() core.Scheduler { return NewBalance(p.Timeslice) }, nil
	case "CREDIT":
		return func() core.Scheduler {
			return NewCredit(CreditParams{Timeslice: p.Timeslice, Weights: p.Weights})
		}, nil
	case "HYBRID":
		return func() core.Scheduler {
			return NewHybrid(HybridParams{Timeslice: p.Timeslice, ConcurrentVMs: p.ConcurrentVMs})
		}, nil
	default:
		return nil, fmt.Errorf("sched: unknown algorithm %q (known: %s)", name, strings.Join(Names(), ", "))
	}
}
