// Package sched implements VCPU scheduling algorithms behind the
// framework's pluggable scheduling-function interface (core.Scheduler): the
// paper's three evaluated algorithms — Round-Robin (RRS), Strict
// Co-Scheduling (SCS), and Relaxed Co-Scheduling (RCS) — plus two
// extensions, Balance scheduling (Sukwong & Kim) and a proportional-share
// Credit scheduler.
//
// All schedulers are single-replication objects: construct a fresh one per
// run through a core.SchedulerFactory.
package sched

import (
	"fmt"
	"sort"

	"vcpusim/internal/core"
)

// RoundRobin is the naïve Round-Robin VCPU scheduler (the paper's RRS): a
// circular cursor over all VCPUs; every idle PCPU is granted to the next
// waiting VCPU after the cursor with a fresh timeslice, regardless of VM
// topology. The rotating cursor guarantees the long-run fairness the
// paper's Figure 8 attributes to RRS: when several VCPUs deschedule in the
// same tick, the grant order continues from where the last round stopped
// instead of restarting at VCPU 0.
type RoundRobin struct {
	timeslice int64
	cursor    int
}

var _ core.Scheduler = (*RoundRobin)(nil)

// NewRoundRobin returns an RRS scheduler granting the given timeslice per
// assignment.
func NewRoundRobin(timeslice int64) *RoundRobin {
	return &RoundRobin{timeslice: timeslice}
}

// Name implements core.Scheduler.
func (r *RoundRobin) Name() string { return "RRS" }

// Schedule implements core.Scheduler.
func (r *RoundRobin) Schedule(_ int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	if len(vcpus) == 0 {
		return
	}
	r.cursor %= len(vcpus)
	idle := core.IdlePCPUs(pcpus)
	scanned := 0
	for _, p := range idle {
		assigned := false
		for ; scanned < len(vcpus); scanned++ {
			id := (r.cursor + scanned) % len(vcpus)
			if vcpus[id].Status == core.Inactive {
				acts.Assign(id, p, r.timeslice)
				scanned++
				assigned = true
				break
			}
		}
		if !assigned {
			break
		}
	}
	r.cursor = (r.cursor + scanned) % len(vcpus)
}

// vcpuQueue is a FIFO of waiting VCPUs with set semantics: a VCPU appears
// at most once. Shared by the queue-based schedulers.
type vcpuQueue struct {
	order  []int
	member map[int]bool
}

func newVCPUQueue() *vcpuQueue {
	return &vcpuQueue{member: make(map[int]bool)}
}

// admitInactive appends every INACTIVE VCPU not yet queued. VCPUs admitted
// in the same call are ordered least-served first (ascending cumulative
// Runtime, then ID): when several VCPUs deschedule in the same tick, naive
// ID order would systematically favor low IDs at every synchronized
// expiry wave.
func (q *vcpuQueue) admitInactive(vcpus []core.VCPUView) {
	var fresh []core.VCPUView
	for _, v := range vcpus {
		if v.Status == core.Inactive && !q.member[v.ID] {
			fresh = append(fresh, v)
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].Runtime != fresh[j].Runtime {
			return fresh[i].Runtime < fresh[j].Runtime
		}
		return fresh[i].ID < fresh[j].ID
	})
	for _, v := range fresh {
		q.push(v.ID)
	}
}

func (q *vcpuQueue) push(id int) {
	if q.member[id] {
		return
	}
	q.order = append(q.order, id)
	q.member[id] = true
}

func (q *vcpuQueue) pop() (int, bool) {
	if len(q.order) == 0 {
		return 0, false
	}
	id := q.order[0]
	q.order = q.order[1:]
	delete(q.member, id)
	return id, true
}

// remove deletes id from the queue wherever it is.
func (q *vcpuQueue) remove(id int) {
	if !q.member[id] {
		return
	}
	for i, v := range q.order {
		if v == id {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
	delete(q.member, id)
}

// len returns the number of queued VCPUs.
func (q *vcpuQueue) len() int { return len(q.order) }

// snapshot returns the queue contents head-first.
func (q *vcpuQueue) snapshot() []int { return append([]int(nil), q.order...) }

func (q *vcpuQueue) String() string { return fmt.Sprint(q.order) }
