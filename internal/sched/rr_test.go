package sched

import (
	"testing"

	"vcpusim/internal/core"
)

func TestRoundRobinName(t *testing.T) {
	if got := NewRoundRobin(10).Name(); got != "RRS" {
		t.Fatalf("name = %q", got)
	}
}

func TestRoundRobinFillsAllPCPUs(t *testing.T) {
	h := newHarness(t, NewRoundRobin(10), 4, 2, 1, 1)
	h.tick()
	for p := range h.pcpus {
		if h.pcpus[p].VCPU < 0 {
			t.Fatalf("PCPU %d idle with waiting VCPUs", p)
		}
	}
}

func TestRoundRobinFairShares(t *testing.T) {
	// 4 VCPUs on 1, 2, and 3 PCPUs: every VCPU receives p/4 of the time.
	for pcpus := 1; pcpus <= 3; pcpus++ {
		h := newHarness(t, NewRoundRobin(10), pcpus, 2, 1, 1)
		h.run(4000)
		want := float64(pcpus) / 4
		for id := 0; id < 4; id++ {
			h.assertShare(id, want, 0.02)
		}
	}
}

func TestRoundRobinFullProvisioning(t *testing.T) {
	h := newHarness(t, NewRoundRobin(10), 4, 2, 1, 1)
	h.run(500)
	for id := 0; id < 4; id++ {
		h.assertShare(id, 1, 0.01)
		if !h.active(id) {
			t.Errorf("VCPU %d idle with ample PCPUs", id)
		}
	}
}

func TestRoundRobinRotationOrder(t *testing.T) {
	// 3 VCPUs, 1 PCPU, timeslice 2: grants must rotate 0,1,2,0,1,2...
	h := newHarness(t, NewRoundRobin(2), 1, 3)
	var grants []int
	for i := 0; i < 13; i++ {
		before := make([]int, 3)
		for id := range before {
			before[id] = h.vcpus[id].PCPU
		}
		h.tick()
		for id := range before {
			if before[id] < 0 && h.vcpus[id].PCPU >= 0 {
				grants = append(grants, id)
			}
		}
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if i >= len(grants) || grants[i] != want[i] {
			t.Fatalf("grant order %v, want prefix %v", grants, want)
		}
	}
}

func TestRoundRobinNoIdleNoAction(t *testing.T) {
	rr := NewRoundRobin(10)
	vcpus := []core.VCPUView{{ID: 0, Status: core.Inactive, PCPU: -1}}
	pcpus := []core.PCPUView{{ID: 0, VCPU: 5}} // occupied
	var acts core.Actions
	rr.Schedule(0, vcpus, pcpus, &acts)
	if !acts.Empty() {
		t.Fatalf("actions on a fully busy system: %+v", acts)
	}
}

func TestRoundRobinEmptySystem(t *testing.T) {
	rr := NewRoundRobin(10)
	var acts core.Actions
	rr.Schedule(0, nil, nil, &acts)
	if !acts.Empty() {
		t.Fatal("actions on an empty system")
	}
}

func TestVCPUQueueSetSemantics(t *testing.T) {
	q := newVCPUQueue()
	q.push(1)
	q.push(2)
	q.push(1) // duplicate ignored
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	if v, ok := q.pop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	q.push(3)
	q.remove(3)
	q.remove(99) // absent: no-op
	if v, ok := q.pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if s := q.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestVCPUQueueAdmitLeastServedFirst(t *testing.T) {
	q := newVCPUQueue()
	views := []core.VCPUView{
		{ID: 0, Status: core.Inactive, Runtime: 60},
		{ID: 1, Status: core.Ready, Runtime: 0},
		{ID: 2, Status: core.Inactive, Runtime: 30},
		{ID: 3, Status: core.Inactive, Runtime: 30},
	}
	q.admitInactive(views)
	got := q.snapshot()
	want := []int{2, 3, 0} // runtime ascending, ties by ID; READY skipped
	if len(got) != len(want) {
		t.Fatalf("queue %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("queue %v, want %v", got, want)
		}
	}
}

// TestWorkConservation: RRS and Credit are work-conserving — after every
// scheduling step, no PCPU sits idle while a VCPU waits. (The
// co-schedulers and Balance are intentionally not: gang constraints and
// static per-PCPU queues can leave PCPUs idle.)
func TestWorkConservation(t *testing.T) {
	cases := map[string]func() core.Scheduler{
		"RRS":    func() core.Scheduler { return NewRoundRobin(7) },
		"Credit": func() core.Scheduler { return NewCredit(CreditParams{Timeslice: 7}) },
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			h := newHarness(t, mk(), 3, 2, 3, 1)
			for i := 0; i < 600; i++ {
				h.tick()
				idle := 0
				for _, p := range h.pcpus {
					if p.VCPU < 0 {
						idle++
					}
				}
				waiting := 0
				for _, v := range h.vcpus {
					if v.PCPU < 0 {
						waiting++
					}
				}
				if idle > 0 && waiting > 0 {
					t.Fatalf("t=%d: %d idle PCPUs with %d waiting VCPUs", h.now, idle, waiting)
				}
			}
		})
	}
}
