package sched

import (
	"vcpusim/internal/core"
)

// StrictCo is the strict co-scheduling algorithm (the paper's SCS,
// VMware ESX 2.x style gang scheduling): a VM is scheduled only when enough
// idle PCPUs exist to co-start all of its VCPUs simultaneously, and all
// siblings receive the same timeslice so they co-stop together. VMs are
// served round-robin, with smaller gangs backfilled into leftover PCPUs —
// still strictly all-or-nothing per VM.
//
// A VM with more VCPUs than physical cores can never gather enough
// resources and is never scheduled (the fragmentation pathology of
// Figure 8's one-PCPU setup).
type StrictCo struct {
	timeslice int64
	next      int // round-robin pointer over VM indices
}

var _ core.Scheduler = (*StrictCo)(nil)

// NewStrictCo returns an SCS scheduler granting the given gang timeslice.
func NewStrictCo(timeslice int64) *StrictCo {
	return &StrictCo{timeslice: timeslice}
}

// Name implements core.Scheduler.
func (s *StrictCo) Name() string { return "SCS" }

// Schedule implements core.Scheduler.
func (s *StrictCo) Schedule(_ int64, vcpus []core.VCPUView, pcpus []core.PCPUView, acts *core.Actions) {
	idle := core.IdlePCPUs(pcpus)
	if len(idle) == 0 {
		return
	}
	byVM := core.SiblingsOf(vcpus)
	vms := core.VMs(vcpus)
	if len(vms) == 0 {
		return
	}
	s.next %= len(vms)

	scheduledFirst := -1
	for i := 0; i < len(vms) && len(idle) > 0; i++ {
		pos := (s.next + i) % len(vms)
		gang := byVM[vms[pos]]
		if len(gang) > len(idle) || !allInactive(gang, vcpus) {
			continue
		}
		for j, id := range gang {
			acts.Assign(id, idle[j], s.timeslice)
		}
		idle = idle[len(gang):]
		if scheduledFirst < 0 {
			scheduledFirst = pos
		}
	}
	if scheduledFirst >= 0 {
		s.next = (scheduledFirst + 1) % len(vms)
	}
}

// allInactive reports whether every listed VCPU is INACTIVE.
func allInactive(ids []int, vcpus []core.VCPUView) bool {
	for _, id := range ids {
		if vcpus[id].Status != core.Inactive {
			return false
		}
	}
	return true
}
