package sched

import (
	"testing"

	"vcpusim/internal/core"
)

func TestStrictCoName(t *testing.T) {
	if got := NewStrictCo(10).Name(); got != "SCS" {
		t.Fatalf("name = %q", got)
	}
}

func TestStrictCoAllOrNothing(t *testing.T) {
	// 2-VCPU VM + two singles on 2 PCPUs: the gang is only ever fully
	// scheduled or fully descheduled.
	h := newHarness(t, NewStrictCo(5), 2, 2, 1, 1)
	for i := 0; i < 200; i++ {
		h.tick()
		a0, a1 := h.active(0), h.active(1)
		if a0 != a1 {
			t.Fatalf("t=%d: gang split: v0 active=%v v1 active=%v", h.now, a0, a1)
		}
	}
}

func TestStrictCoStarvesOversizedGang(t *testing.T) {
	// A 2-VCPU VM on one PCPU can never gather enough resources
	// (Figure 8's one-PCPU pathology).
	h := newHarness(t, NewStrictCo(5), 1, 2, 1, 1)
	h.run(1000)
	if h.vcpus[0].Runtime != 0 || h.vcpus[1].Runtime != 0 {
		t.Fatalf("oversized gang ran: runtimes %d/%d", h.vcpus[0].Runtime, h.vcpus[1].Runtime)
	}
	// The singles split the PCPU evenly.
	h.assertShare(2, 0.5, 0.02)
	h.assertShare(3, 0.5, 0.02)
}

func TestStrictCoBackfill(t *testing.T) {
	// Gangs of 2 and 1 on 3 PCPUs: both fit simultaneously, filling all
	// three PCPUs, plus another single backfills the fourth when present.
	h := newHarness(t, NewStrictCo(5), 3, 2, 1)
	h.tick()
	used := 0
	for _, p := range h.pcpus {
		if p.VCPU >= 0 {
			used++
		}
	}
	if used != 3 {
		t.Fatalf("backfill used %d PCPUs, want 3", used)
	}
}

func TestStrictCoGangTimeslicesEqual(t *testing.T) {
	// Siblings must co-stop: they are always granted identical
	// timeslices.
	s := NewStrictCo(7)
	vcpus := []core.VCPUView{
		{ID: 0, VM: 0, Sibling: 0, Status: core.Inactive, PCPU: -1},
		{ID: 1, VM: 0, Sibling: 1, Status: core.Inactive, PCPU: -1},
	}
	pcpus := []core.PCPUView{{ID: 0, VCPU: -1}, {ID: 1, VCPU: -1}}
	var acts core.Actions
	s.Schedule(0, vcpus, pcpus, &acts)
	assigns := acts.Assigns()
	if len(assigns) != 2 {
		t.Fatalf("assigned %d, want the whole gang", len(assigns))
	}
	if assigns[0].Timeslice != assigns[1].Timeslice {
		t.Fatalf("gang timeslices differ: %d vs %d", assigns[0].Timeslice, assigns[1].Timeslice)
	}
}

func TestStrictCoRoundRobinOverVMs(t *testing.T) {
	// Two 2-VCPU VMs on 2 PCPUs must alternate slices, each getting half.
	h := newHarness(t, NewStrictCo(5), 2, 2, 2)
	h.run(2000)
	for id := 0; id < 4; id++ {
		h.assertShare(id, 0.5, 0.02)
	}
}

func TestStrictCoSet2Alternation(t *testing.T) {
	// The paper's set 2 (2+3 VCPUs, 4 PCPUs): the VMs cannot co-run, so
	// each is scheduled half the time (PCPU utilization 62.5%).
	h := newHarness(t, NewStrictCo(10), 4, 2, 3)
	h.run(4000)
	for id := 0; id < 5; id++ {
		h.assertShare(id, 0.5, 0.03)
	}
	// Never more than one gang at a time.
	for i := 0; i < 100; i++ {
		h.tick()
		if h.active(0) && h.active(2) {
			t.Fatal("both gangs scheduled simultaneously on 4 PCPUs (2+3 VCPUs)")
		}
	}
}

func TestStrictCoSkipsPartiallyActiveVM(t *testing.T) {
	// Defensive: if a gang is somehow half-running (not reachable under
	// SCS alone), the scheduler must not co-start it again.
	s := NewStrictCo(5)
	vcpus := []core.VCPUView{
		{ID: 0, VM: 0, Sibling: 0, Status: core.Ready, PCPU: 0},
		{ID: 1, VM: 0, Sibling: 1, Status: core.Inactive, PCPU: -1},
	}
	pcpus := []core.PCPUView{{ID: 0, VCPU: 0}, {ID: 1, VCPU: -1}}
	var acts core.Actions
	s.Schedule(0, vcpus, pcpus, &acts)
	if !acts.Empty() {
		t.Fatalf("scheduled a partially active gang: %+v", acts.Assigns())
	}
}

func TestStrictCoNoIdlePCPUs(t *testing.T) {
	s := NewStrictCo(5)
	vcpus := []core.VCPUView{{ID: 0, VM: 0, Status: core.Inactive, PCPU: -1}}
	pcpus := []core.PCPUView{{ID: 0, VCPU: 7}}
	var acts core.Actions
	s.Schedule(0, vcpus, pcpus, &acts)
	if !acts.Empty() {
		t.Fatal("actions with no idle PCPUs")
	}
}
