package sim

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// TestRunPooledMatchesRunStateless verifies the pooled executor with
// stateful per-worker replicators produces exactly the summary the
// stateless path does: same seeds, same fold order, same intervals.
func TestRunPooledMatchesRunStateless(t *testing.T) {
	opts := Options{Seed: 9, MinReps: 11, MaxReps: 23, RelWidth: 1e-9, Parallelism: 4}
	want, err := Run(context.Background(), noisyReplicator(5, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	var factoryCalls atomic.Int64
	factory := func() (Replicator, error) {
		factoryCalls.Add(1)
		reps := 0 // per-worker state: must not affect results
		return func(ctx context.Context, rep int, seed uint64) (map[string]float64, error) {
			reps++
			return noisyReplicator(5, 2)(ctx, rep, seed)
		}, nil
	}
	got, err := RunPooled(context.Background(), factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replications != want.Replications || got.Converged != want.Converged {
		t.Fatalf("pooled (%d reps, converged=%v) vs stateless (%d reps, converged=%v)",
			got.Replications, got.Converged, want.Replications, want.Converged)
	}
	a, b := got.Metrics["m"], want.Metrics["m"]
	if a.Mean != b.Mean || a.HalfWidth != b.HalfWidth {
		t.Fatalf("pooled interval %v differs from stateless %v", a, b)
	}
	if n := factoryCalls.Load(); n < 1 || n > int64(opts.Parallelism) {
		t.Errorf("factory called %d times, want 1..%d (lazy per-slot)", n, opts.Parallelism)
	}
}

// TestRunPooledWorkerSerial verifies the pooling contract replicators
// rely on: one worker slot never runs two replications concurrently.
func TestRunPooledWorkerSerial(t *testing.T) {
	opts := Options{Seed: 3, MinReps: 8, MaxReps: 32, RelWidth: 1e-9, Parallelism: 8}
	factory := func() (Replicator, error) {
		var busy atomic.Bool
		return func(ctx context.Context, rep int, seed uint64) (map[string]float64, error) {
			if !busy.CompareAndSwap(false, true) {
				return nil, fmt.Errorf("worker entered concurrently at rep %d", rep)
			}
			defer busy.Store(false)
			return noisyReplicator(1, 10)(ctx, rep, seed)
		}, nil
	}
	if _, err := RunPooled(context.Background(), factory, opts); err != nil {
		t.Fatal(err)
	}
}

// TestRunPooledFactoryError verifies a failing factory aborts the run.
func TestRunPooledFactoryError(t *testing.T) {
	factory := func() (Replicator, error) { return nil, fmt.Errorf("no worker for you") }
	_, err := RunPooled(context.Background(), factory, Options{Seed: 1})
	if err == nil {
		t.Fatal("factory error did not abort the experiment")
	}
}

// TestRunPooledNilFactory and nil-replicator factories are rejected.
func TestRunPooledNilFactory(t *testing.T) {
	if _, err := RunPooled(context.Background(), nil, Options{Seed: 1}); err == nil {
		t.Fatal("nil factory accepted")
	}
	factory := func() (Replicator, error) { return nil, nil }
	if _, err := RunPooled(context.Background(), factory, Options{Seed: 1}); err == nil {
		t.Fatal("nil replicator accepted")
	}
}

// TestRunPooledSeedIsReplicationIndexed re-checks determinism end to end:
// metric value depends only on the replication seed, so any legal
// work-distribution across slots yields the identical mean.
func TestRunPooledSeedIsReplicationIndexed(t *testing.T) {
	runAt := func(par int) Summary {
		factory := func() (Replicator, error) {
			return func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
				return map[string]float64{"s": float64(seed % 1024)}, nil
			}, nil
		}
		sum, err := RunPooled(context.Background(), factory, Options{
			Seed: 77, MinReps: 16, MaxReps: 16, RelWidth: 1e-12, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	serial, parallel := runAt(1), runAt(8)
	if a, b := serial.Metrics["s"], parallel.Metrics["s"]; a.Mean != b.Mean ||
		math.Abs(a.HalfWidth-b.HalfWidth) > 0 {
		t.Fatalf("parallel pooled summary differs: %v vs %v", a, b)
	}
}
