// Package sim runs simulation experiments as sequences of independent
// replications with confidence-interval controlled stopping, replacing the
// Möbius simulation executive the paper relies on: replications run in
// parallel, results are aggregated per reward variable, and the experiment
// stops once every tracked metric's relative confidence-interval half-width
// drops below the target (the paper reports 95 % confidence with <0.1
// intervals) or the replication budget is exhausted.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"vcpusim/internal/obs"
	"vcpusim/internal/rng"
	"vcpusim/internal/stats"
)

// Replicator produces the reward-variable values of one replication.
// Implementations must be safe for concurrent invocation with distinct
// seeds (each call builds its own model), and should honor ctx so that a
// cancelled experiment interrupts a long replication instead of letting
// the whole batch run to its horizon.
type Replicator func(ctx context.Context, rep int, seed uint64) (map[string]float64, error)

// ReplicatorFactory constructs one Replicator per worker for RunPooled.
// Each returned replicator is invoked serially by a single worker
// goroutine, so it may carry state across replications — typically a
// compiled model whose instance is reset per seed (core.Worker) — without
// any locking. The factory itself may be called from the experiment's
// goroutine multiple times; it must produce independent replicators.
type ReplicatorFactory func() (Replicator, error)

// Options controls an experiment run. Zero values select the defaults
// documented per field.
type Options struct {
	// Level is the confidence level; default 0.95.
	Level float64
	// RelWidth is the target relative CI half-width; default 0.1 (the
	// paper's setting).
	RelWidth float64
	// MinReps is the minimum number of replications; default 10.
	MinReps int
	// MaxReps bounds the number of replications; default 100.
	MaxReps int
	// Parallelism is the number of concurrent replications; default
	// GOMAXPROCS.
	Parallelism int
	// Seed derives every replication's seed deterministically; the same
	// seed reproduces the experiment regardless of parallelism.
	Seed uint64
	// StopMetrics lists the metrics whose CIs gate stopping; empty means
	// every observed metric.
	StopMetrics []string
	// Sink, when non-nil, receives span events from the replication
	// controller: one sim.batch event per completed batch and one
	// sim.stop event per stopping-rule check (with the current relative
	// CI half-widths). Nil costs nothing — no event is constructed.
	Sink obs.Sink
}

func (o Options) withDefaults() Options {
	if o.Level == 0 {
		o.Level = 0.95
	}
	if o.RelWidth == 0 {
		o.RelWidth = 0.1
	}
	if o.MinReps == 0 {
		o.MinReps = 10
	}
	if o.MaxReps == 0 {
		o.MaxReps = 100
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.Level <= 0 || o.Level >= 1 {
		return fmt.Errorf("sim: confidence level %g out of (0,1)", o.Level)
	}
	if o.RelWidth <= 0 {
		return fmt.Errorf("sim: non-positive target CI width %g", o.RelWidth)
	}
	if o.MinReps < 2 {
		return fmt.Errorf("sim: need at least two replications, got min %d", o.MinReps)
	}
	if o.MaxReps < o.MinReps {
		return fmt.Errorf("sim: max replications %d below min %d", o.MaxReps, o.MinReps)
	}
	if o.Parallelism < 1 {
		return fmt.Errorf("sim: non-positive parallelism %d", o.Parallelism)
	}
	return nil
}

// Summary aggregates an experiment's replications.
type Summary struct {
	// Metrics holds the confidence interval of every reward variable.
	Metrics map[string]stats.Interval
	// Replications is the number of replications executed.
	Replications int
	// Converged reports whether the CI target was met (as opposed to
	// exhausting MaxReps).
	Converged bool
	// Level echoes the confidence level.
	Level float64
}

// Metric returns the interval for a metric name and whether it exists.
func (s Summary) Metric(name string) (stats.Interval, bool) {
	iv, ok := s.Metrics[name]
	return iv, ok
}

// Mean returns the mean of a metric, or 0 if absent.
func (s Summary) Mean(name string) float64 {
	return s.Metrics[name].Mean
}

// MetricNames returns the observed metric names sorted.
func (s Summary) MetricNames() []string {
	names := make([]string, 0, len(s.Metrics))
	for n := range s.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes replications of rep until the stopping rule is satisfied.
// It is deterministic for a given Options.Seed: per-replication seeds are
// pre-derived, so parallel and serial execution produce identical
// aggregates. rep must be safe for concurrent invocation; replicators
// that carry per-worker state belong in RunPooled.
func Run(ctx context.Context, rep Replicator, opts Options) (Summary, error) {
	if rep == nil {
		return Summary{}, fmt.Errorf("sim: nil replicator")
	}
	return RunPooled(ctx, func() (Replicator, error) { return rep, nil }, opts)
}

// RunPooled is Run with per-worker replicator state: factory is called
// once per worker slot (at most Options.Parallelism times, lazily), and
// each produced replicator is driven serially by its slot across batches.
// A replicator can therefore compile its model once and reset a pooled
// instance per replication, amortizing setup over the whole experiment.
//
// Determinism is unchanged from Run: replication seeds are pre-derived
// from Options.Seed, replication i always receives seed i, and results
// are folded into the accumulators in replication order — so pooled,
// fresh, serial, and parallel execution all produce identical summaries
// as long as each replication is a pure function of its seed.
func RunPooled(ctx context.Context, factory ReplicatorFactory, opts Options) (Summary, error) {
	if factory == nil {
		return Summary{}, fmt.Errorf("sim: nil replicator factory")
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return Summary{}, err
	}

	// Pre-derive every replication seed from the experiment seed.
	seeds := make([]uint64, opts.MaxReps)
	src := rng.New(opts.Seed)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}

	// Worker slots, filled lazily: slot j serves replication j of every
	// batch, so one slot never runs two replications at once.
	workers := make([]Replicator, 0, opts.Parallelism)
	ensureWorkers := func(n int) error {
		for len(workers) < n {
			w, err := factory()
			if err != nil {
				return fmt.Errorf("sim: building worker %d: %w", len(workers), err)
			}
			if w == nil {
				return fmt.Errorf("sim: replicator factory returned nil for worker %d", len(workers))
			}
			workers = append(workers, w)
		}
		return nil
	}

	acc := make(map[string]*stats.Welford)
	done := 0
	batches := 0
	converged := false

	for done < opts.MaxReps && !converged {
		if err := ctx.Err(); err != nil {
			return Summary{}, fmt.Errorf("sim: cancelled after %d replications: %w", done, err)
		}
		batch := opts.Parallelism
		if remaining := opts.MaxReps - done; batch > remaining {
			batch = remaining
		}
		if done < opts.MinReps && done+batch > opts.MinReps {
			// Run exactly up to MinReps before first convergence check
			// unless the batch already covers it.
			batch = opts.MinReps - done
		}
		if err := ensureWorkers(batch); err != nil {
			return Summary{}, err
		}
		results, err := runBatch(ctx, workers, seeds[done:done+batch], done)
		if err != nil {
			return Summary{}, err
		}
		for _, r := range results {
			for name, v := range r {
				w := acc[name]
				if w == nil {
					w = &stats.Welford{}
					acc[name] = w
				}
				w.Add(v)
			}
		}
		done += batch
		batches++
		if opts.Sink != nil {
			opts.Sink.Emit(obs.Event{Kind: obs.KindBatch, Batch: batches, Size: batch, Reps: done})
		}
		if done >= opts.MinReps {
			converged = convergedAll(acc, opts)
			if opts.Sink != nil {
				opts.Sink.Emit(obs.Event{
					Kind: obs.KindStop, Reps: done, Converged: converged,
					Widths: relWidths(acc, opts.Level),
				})
			}
		}
	}

	out := Summary{
		Metrics:      make(map[string]stats.Interval, len(acc)),
		Replications: done,
		Converged:    converged,
		Level:        opts.Level,
	}
	for name, w := range acc {
		out.Metrics[name] = w.CI(opts.Level)
	}
	return out, nil
}

// runBatch executes one batch of replications concurrently — replication
// i of the batch on worker i — preserving replication order in the
// returned slice.
func runBatch(ctx context.Context, workers []Replicator, seeds []uint64, base int) ([]map[string]float64, error) {
	results := make([]map[string]float64, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i := range seeds {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := workers[i](ctx, base+i, seeds[i])
			if err != nil {
				errs[i] = fmt.Errorf("sim: replication %d: %w", base+i, err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// BatchMeans estimates steady-state metrics from one long run split into
// batches (the method of batch means): each element of batches is the
// metric map of one window (e.g. from fastsim's RunWindowed), treated as
// one observation. With windows long enough that autocorrelation between
// them is negligible, the Student-t intervals are valid; the caller is
// responsible for discarding the initial transient and choosing the batch
// length. At least two batches are required.
func BatchMeans(batches []map[string]float64, level float64) (Summary, error) {
	if len(batches) < 2 {
		return Summary{}, fmt.Errorf("sim: batch means needs at least two batches, got %d", len(batches))
	}
	if level <= 0 || level >= 1 {
		return Summary{}, fmt.Errorf("sim: confidence level %g out of (0,1)", level)
	}
	acc := make(map[string]*stats.Welford)
	for _, b := range batches {
		for name, v := range b {
			w := acc[name]
			if w == nil {
				w = &stats.Welford{}
				acc[name] = w
			}
			w.Add(v)
		}
	}
	out := Summary{
		Metrics:      make(map[string]stats.Interval, len(acc)),
		Replications: len(batches),
		Converged:    true,
		Level:        level,
	}
	for name, w := range acc {
		out.Metrics[name] = w.CI(level)
	}
	return out, nil
}

// relWidths snapshots every metric's relative CI half-width for a
// sim.stop span. Non-finite widths (zero means) are omitted: they cannot
// be represented in JSON and carry no stopping information.
func relWidths(acc map[string]*stats.Welford, level float64) map[string]float64 {
	out := make(map[string]float64, len(acc))
	for name, w := range acc {
		rw := w.CI(level).RelHalfWidth()
		if math.IsNaN(rw) || math.IsInf(rw, 0) {
			continue
		}
		out[name] = rw
	}
	return out
}

// convergedAll reports whether every tracked metric meets the CI target.
func convergedAll(acc map[string]*stats.Welford, opts Options) bool {
	check := func(w *stats.Welford) bool {
		return w.CI(opts.Level).RelHalfWidth() < opts.RelWidth
	}
	if len(opts.StopMetrics) > 0 {
		for _, name := range opts.StopMetrics {
			w, ok := acc[name]
			if !ok || !check(w) {
				return false
			}
		}
		return true
	}
	if len(acc) == 0 {
		return false
	}
	for _, w := range acc {
		if !check(w) {
			return false
		}
	}
	return true
}
