package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcpusim/internal/rng"
)

// noisyReplicator produces a metric with mean `mean` and bounded noise
// derived deterministically from the seed.
func noisyReplicator(mean, noise float64) Replicator {
	return func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		src := rng.New(seed)
		return map[string]float64{
			"m": mean + noise*(src.Float64()-0.5),
		}, nil
	}
}

func TestRunConverges(t *testing.T) {
	sum, err := Run(context.Background(), noisyReplicator(10, 1), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := sum.Metric("m")
	if !ok {
		t.Fatal("metric missing")
	}
	if math.Abs(iv.Mean-10) > 0.5 {
		t.Fatalf("mean = %g, want ~10", iv.Mean)
	}
	if !sum.Converged {
		t.Error("low-noise experiment did not converge")
	}
	if sum.Replications < 10 {
		t.Errorf("replications = %d, below MinReps", sum.Replications)
	}
	if iv.RelHalfWidth() >= 0.1 {
		t.Errorf("relative half-width %g above target", iv.RelHalfWidth())
	}
	if sum.Level != 0.95 {
		t.Errorf("level = %g, want default 0.95", sum.Level)
	}
}

func TestRunStopsAtMaxReps(t *testing.T) {
	// Very noisy metric with a tight target: must exhaust MaxReps.
	opts := Options{Seed: 1, RelWidth: 1e-6, MinReps: 5, MaxReps: 17}
	sum, err := Run(context.Background(), noisyReplicator(1, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Converged {
		t.Error("noisy experiment claims convergence")
	}
	if sum.Replications != 17 {
		t.Errorf("replications = %d, want MaxReps 17", sum.Replications)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) Summary {
		sum, err := Run(context.Background(), noisyReplicator(5, 2), Options{
			Seed: 42, MinReps: 12, MaxReps: 12, RelWidth: 1e-9, Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	serial := run(1)
	parallel := run(8)
	if serial.Replications != parallel.Replications {
		t.Fatalf("replication counts differ: %d vs %d", serial.Replications, parallel.Replications)
	}
	a, b := serial.Metrics["m"], parallel.Metrics["m"]
	if math.Abs(a.Mean-b.Mean) > 1e-12 || math.Abs(a.HalfWidth-b.HalfWidth) > 1e-12 {
		t.Fatalf("parallel result differs: %v vs %v", a, b)
	}
}

func TestRunSeedsDistinct(t *testing.T) {
	var mu atomic.Int64
	seen := make(chan uint64, 64)
	rep := func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		mu.Add(1)
		seen <- seed
		return map[string]float64{"m": 1}, nil
	}
	_, err := Run(context.Background(), rep, Options{Seed: 3, MinReps: 10, MaxReps: 10, RelWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	close(seen)
	got := map[uint64]bool{}
	for s := range seen {
		if got[s] {
			t.Fatalf("seed %d reused", s)
		}
		got[s] = true
	}
	if len(got) != 10 {
		t.Fatalf("saw %d distinct seeds, want 10", len(got))
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	rep := func(_ context.Context, i int, _ uint64) (map[string]float64, error) {
		if i == 3 {
			return nil, boom
		}
		return map[string]float64{"m": 1}, nil
	}
	_, err := Run(context.Background(), rep, Options{Seed: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunNilReplicator(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil replicator accepted")
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep := noisyReplicator(1, 1)
	if _, err := Run(ctx, rep, Options{Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	rep := noisyReplicator(1, 1)
	cases := []Options{
		{Level: 1.5},
		{Level: -0.1},
		{RelWidth: -1},
		{MinReps: 1},
		{MinReps: 20, MaxReps: 10},
		{Parallelism: -2},
	}
	for i, opts := range cases {
		if _, err := Run(context.Background(), rep, opts); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, opts)
		}
	}
}

func TestStopMetricsSubset(t *testing.T) {
	// Metric "noisy" never converges, but stopping gates only on "flat".
	rep := func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		src := rng.New(seed)
		return map[string]float64{
			"flat":  100,
			"noisy": src.Float64() * 1000,
		}, nil
	}
	sum, err := Run(context.Background(), rep, Options{
		Seed: 1, StopMetrics: []string{"flat"}, MinReps: 5, MaxReps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged {
		t.Error("did not converge on the gated metric")
	}
	if sum.Replications > 10 {
		t.Errorf("ran %d replications; the gated metric converges immediately", sum.Replications)
	}
}

func TestStopMetricsMissingNeverConverges(t *testing.T) {
	sum, err := Run(context.Background(), noisyReplicator(1, 0.01), Options{
		Seed: 1, StopMetrics: []string{"absent"}, MinReps: 3, MaxReps: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Converged {
		t.Error("converged on a metric that was never observed")
	}
	if sum.Replications != 7 {
		t.Errorf("replications = %d, want MaxReps", sum.Replications)
	}
}

func TestSummaryHelpers(t *testing.T) {
	sum, err := Run(context.Background(), func(_ context.Context, _ int, _ uint64) (map[string]float64, error) {
		return map[string]float64{"b": 2, "a": 1}, nil
	}, Options{Seed: 1, MinReps: 3, MaxReps: 3, RelWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	names := sum.MetricNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("MetricNames = %v", names)
	}
	if sum.Mean("a") != 1 || sum.Mean("missing") != 0 {
		t.Fatal("Mean helper wrong")
	}
	if _, ok := sum.Metric("missing"); ok {
		t.Fatal("missing metric reported present")
	}
}

func TestZeroMeanMetricConverges(t *testing.T) {
	// A constant-zero metric (e.g. SCS's starved VM availability) must
	// not block convergence: 0 ± 0 has zero relative width.
	rep := func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		src := rng.New(seed)
		return map[string]float64{
			"zero": 0,
			"main": 5 + 0.1*(src.Float64()-0.5),
		}, nil
	}
	sum, err := Run(context.Background(), rep, Options{Seed: 1, MinReps: 5, MaxReps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged {
		t.Fatalf("zero-mean metric blocked convergence (%d reps)", sum.Replications)
	}
}

func TestReplicationIndexPassed(t *testing.T) {
	var calls []int
	mu := make(chan struct{}, 1)
	mu <- struct{}{}
	rep := func(_ context.Context, i int, _ uint64) (map[string]float64, error) {
		<-mu
		calls = append(calls, i)
		mu <- struct{}{}
		return map[string]float64{"m": 1}, nil
	}
	if _, err := Run(context.Background(), rep, Options{Seed: 1, MinReps: 6, MaxReps: 6, RelWidth: 100, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range calls {
		seen[c] = true
	}
	for i := 0; i < 6; i++ {
		if !seen[i] {
			t.Fatalf("replication index %d never ran (saw %v)", i, calls)
		}
	}
}

func TestLargeBatchClampsToMaxReps(t *testing.T) {
	count := atomic.Int64{}
	rep := func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		count.Add(1)
		src := rng.New(seed)
		return map[string]float64{"m": src.Float64()}, nil
	}
	_, err := Run(context.Background(), rep, Options{
		Seed: 1, MinReps: 2, MaxReps: 5, RelWidth: 1e-12, Parallelism: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 5 {
		t.Fatalf("ran %d replications, want exactly MaxReps 5", got)
	}
}

func ExampleRun() {
	rep := func(_ context.Context, _ int, seed uint64) (map[string]float64, error) {
		return map[string]float64{"answer": 42}, nil
	}
	sum, _ := Run(context.Background(), rep, Options{Seed: 1, MinReps: 3, MaxReps: 3, RelWidth: 100})
	fmt.Println(sum.Replications, sum.Mean("answer"))
	// Output: 3 42
}

// TestCancellationInterruptsBlockedReplication verifies ctx reaches the
// replicator: a replication blocked mid-run (here on ctx.Done itself,
// standing in for a long event loop that polls ctx) unblocks as soon as
// the experiment is cancelled, instead of the executive waiting a full
// batch for it.
func TestCancellationInterruptsBlockedReplication(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	rep := func(ctx context.Context, _ int, _ uint64) (map[string]float64, error) {
		once.Do(func() { close(started) })
		<-ctx.Done() // a conforming replicator returns once cancelled
		return nil, ctx.Err()
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, rep, Options{Seed: 1, MinReps: 2, MaxReps: 4, Parallelism: 2})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not interrupt the blocked replication batch")
	}
}
