package stats

import "testing"

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 97))
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TQuantile(0.95, 20)
	}
}

func BenchmarkTQuantileUncached(b *testing.B) {
	// The bisection TQuantile runs once per distinct (level, df) and then
	// serves from cache; this is the cost every stopping check used to pay.
	for i := 0; i < b.N; i++ {
		_ = tQuantileFresh(0.95, 20)
	}
}

func BenchmarkTimeWeightedObserve(b *testing.B) {
	var tw TimeWeighted
	tw.Start(0, 0)
	for i := 0; i < b.N; i++ {
		tw.Observe(float64(i+1), float64(i%2))
	}
}
