// Package stats provides the statistics substrate for the simulator:
// streaming mean/variance accumulators (Welford), time-weighted state
// accumulators for rate rewards, Student-t confidence intervals for the
// replication runner, and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Welford accumulates a sample mean and variance in a single streaming pass
// using Welford's algorithm. The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Interval is a symmetric confidence interval around a mean.
type Interval struct {
	Mean      float64
	HalfWidth float64
	Level     float64 // e.g. 0.95
	N         int64   // observations behind the interval
}

// Low returns the interval's lower bound.
func (iv Interval) Low() float64 { return iv.Mean - iv.HalfWidth }

// High returns the interval's upper bound.
func (iv Interval) High() float64 { return iv.Mean + iv.HalfWidth }

// RelHalfWidth returns HalfWidth/|Mean|, or +Inf when the mean is zero and
// the half-width is not. The paper stops replications when this drops
// below 0.1.
func (iv Interval) RelHalfWidth() float64 {
	if iv.Mean == 0 {
		if iv.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Mean)
}

func (iv Interval) String() string {
	return fmt.Sprintf("%.4f ± %.4f (%.0f%%, n=%d)", iv.Mean, iv.HalfWidth, iv.Level*100, iv.N)
}

// CI returns the confidence interval at the given level (e.g. 0.95) from the
// accumulated observations, using the Student-t distribution. With fewer
// than two observations the half-width is +Inf.
func (w *Welford) CI(level float64) Interval {
	iv := Interval{Mean: w.mean, Level: level, N: w.n}
	if w.n < 2 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	t := TQuantile(level, int(w.n-1))
	iv.HalfWidth = t * w.StdErr()
	return iv
}

// tQuantileKey identifies one memoized critical value.
type tQuantileKey struct {
	level float64
	df    int
}

// tQuantileCache memoizes TQuantile per (level, df). An experiment calls
// TQuantile on every stopping check for every metric, but only ever with
// a handful of levels and a df that grows with the replication count, so
// the hit rate is near 1 after the first few batches. sync.Map fits the
// access pattern (write once, read many, from concurrent experiment
// cells).
var tQuantileCache sync.Map

// TQuantile returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom: the value t such that
// P(-t < T_df < t) = level. Results are memoized per (level, df); the
// bisection below runs once per distinct input.
func TQuantile(level float64, df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	key := tQuantileKey{level: level, df: df}
	if v, ok := tQuantileCache.Load(key); ok {
		return v.(float64)
	}
	t := tQuantileFresh(level, df)
	tQuantileCache.Store(key, t)
	return t
}

// tQuantileFresh computes the critical value by bisection, uncached.
func tQuantileFresh(level float64, df int) float64 {
	// Two-sided: we need the (1+level)/2 quantile.
	p := (1 + level) / 2
	// Invert the t CDF by bisection on [0, hi]. The CDF is monotone; 2000
	// comfortably exceeds any critical value for p < 0.9999 and df >= 1.
	lo, hi := 0.0, 2000.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, float64(df)) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// tCDF is the CDF of the Student-t distribution with df degrees of freedom,
// computed via the regularized incomplete beta function.
func tCDF(t, df float64) float64 {
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		// Use the symmetry relation for faster convergence.
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const eps = 1e-14
	const tiny = 1e-300
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= 300; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -((a + float64(m)) * (a + b + float64(m)) * x) / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		cd := c * d
		f *= cd
		if math.Abs(1-cd) < eps {
			break
		}
	}
	return front * (f - 1)
}

// lgamma wraps math.Lgamma, dropping the sign (arguments here are positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// TimeWeighted accumulates the time integral of a piecewise-constant signal,
// the basis of SAN rate rewards: the mean over [start, now] is the
// time-averaged value of the signal.
type TimeWeighted struct {
	start    float64
	lastT    float64
	lastV    float64
	integral float64
	started  bool
}

// Start begins accumulation at time t with initial value v. It resets any
// prior state.
func (tw *TimeWeighted) Start(t, v float64) {
	*tw = TimeWeighted{start: t, lastT: t, lastV: v, started: true}
}

// Observe records that the signal changed to v at time t. Time must be
// non-decreasing. The running case is branch-plus-arithmetic so Observe
// inlines into reward-observation loops; first observation and the
// time-regression panic live in the cold helper.
func (tw *TimeWeighted) Observe(t, v float64) {
	if !tw.started || t < tw.lastT {
		tw.observeSlow(t, v)
		return
	}
	tw.integral += tw.lastV * (t - tw.lastT)
	tw.lastT = t
	tw.lastV = v
}

//go:noinline
func (tw *TimeWeighted) observeSlow(t, v float64) {
	if !tw.started {
		tw.Start(t, v)
		return
	}
	panic(fmt.Sprintf("stats: TimeWeighted time went backwards: %g < %g", t, tw.lastT))
}

// MeanAt returns the time average of the signal over [start, t].
func (tw *TimeWeighted) MeanAt(t float64) float64 {
	if !tw.started || t <= tw.start {
		return 0
	}
	integral := tw.integral + tw.lastV*(t-tw.lastT)
	return integral / (t - tw.start)
}

// IntegralAt returns the time integral of the signal over [start, t].
func (tw *TimeWeighted) IntegralAt(t float64) float64 {
	if !tw.started {
		return 0
	}
	return tw.integral + tw.lastV*(t-tw.lastT)
}

// Histogram is a fixed-bin histogram over [Low, High); values outside the
// range land in under/overflow counters.
type Histogram struct {
	low, high float64
	width     float64
	counts    []int64
	under     int64
	over      int64
	total     int64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [low, high). It returns an error for invalid ranges or bin counts.
func NewHistogram(low, high float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(low < high) {
		return nil, fmt.Errorf("stats: histogram range invalid: [%g, %g)", low, high)
	}
	return &Histogram{
		low:    low,
		high:   high,
		width:  (high - low) / float64(bins),
		counts: make([]int64, bins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.low:
		h.under++
	case x >= h.high:
		h.over++
	default:
		i := int((x - h.low) / h.width)
		if i >= len(h.counts) { // guard against floating-point edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Underflow returns the count of observations below the range.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() int64 { return h.over }

// Quantile returns the q-quantile (0 <= q <= 1) of the given sample using
// linear interpolation. It returns an error for an empty sample or q out of
// range. The input slice is not modified.
func Quantile(sample []float64, q float64) (float64, error) {
	if len(sample) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1], nil
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac, nil
}
