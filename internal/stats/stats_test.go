package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordAgainstNaive(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	wantVar := varSum / float64(len(xs)-1)

	if !almostEqual(w.Mean(), mean, 1e-12) {
		t.Errorf("mean = %g, want %g", w.Mean(), mean)
	}
	if !almostEqual(w.Variance(), wantVar, 1e-12) {
		t.Errorf("variance = %g, want %g", w.Variance(), wantVar)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("n = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all-zero")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Variance() != 0 {
		t.Errorf("single observation: mean=%g var=%g", w.Mean(), w.Variance())
	}
	if !math.IsInf(w.CI(0.95).HalfWidth, 1) {
		t.Error("CI of one observation should have infinite half-width")
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 2.5}
	var whole, left, right Welford
	for i, x := range xs {
		whole.Add(x)
		if i < 5 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(right)
	if !almostEqual(left.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("merged mean %g, want %g", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("merged variance %g, want %g", left.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging an empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != a.Mean() || b.N() != a.N() {
		t.Error("merging into empty did not copy")
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Two-sided 95% critical values from standard tables.
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{100, 1.984},
	}
	for _, tc := range cases {
		got := TQuantile(0.95, tc.df)
		if !almostEqual(got, tc.want, 0.01) {
			t.Errorf("t(0.95, df=%d) = %.4f, want %.3f", tc.df, got, tc.want)
		}
	}
	// 99% check.
	if got := TQuantile(0.99, 10); !almostEqual(got, 3.169, 0.01) {
		t.Errorf("t(0.99, df=10) = %.4f, want 3.169", got)
	}
	if !math.IsInf(TQuantile(0.95, 0), 1) {
		t.Error("df=0 should give +Inf")
	}
}

func TestTQuantileCachedMatchesFresh(t *testing.T) {
	// TQuantile memoizes per (level, df); every cached value must equal
	// the uncached bisection bit for bit, including repeat lookups.
	for _, level := range []float64{0.90, 0.95, 0.99} {
		for df := 1; df <= 120; df++ {
			fresh := tQuantileFresh(level, df)
			for rep := 0; rep < 2; rep++ {
				if got := TQuantile(level, df); got != fresh {
					t.Fatalf("TQuantile(%g, %d) lookup %d = %v, fresh = %v",
						level, df, rep, got, fresh)
				}
			}
		}
	}
}

func TestTQuantileConcurrent(t *testing.T) {
	// Concurrent experiment cells hit the cache from many goroutines;
	// under -race this verifies the memoization is data-race free.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for df := 1; df <= 60; df++ {
				want := tQuantileFresh(0.95, df)
				if got := TQuantile(0.95, df); got != want {
					t.Errorf("concurrent TQuantile(0.95, %d) = %v, want %v", df, got, want)
				}
			}
		}()
	}
	wg.Wait()
}

func TestCIContainsTrueMean(t *testing.T) {
	// Symmetric deviations around 10 give a sample mean of exactly 10,
	// which every confidence interval must contain.
	var w Welford
	x := 0.5
	for i := 0; i < 50; i++ {
		x = math.Mod(x*997.13+3.7, 1)
		w.Add(10 + x)
		w.Add(10 - x)
	}
	iv := w.CI(0.95)
	if iv.Low() > 10 || iv.High() < 10 {
		t.Errorf("CI %v does not contain the true mean 10", iv)
	}
	if iv.Level != 0.95 || iv.N != 100 {
		t.Errorf("interval metadata wrong: %+v", iv)
	}
}

func TestIntervalRelHalfWidth(t *testing.T) {
	if got := (Interval{Mean: 2, HalfWidth: 0.2}).RelHalfWidth(); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("rel half-width = %g, want 0.1", got)
	}
	if got := (Interval{Mean: 0, HalfWidth: 0}).RelHalfWidth(); got != 0 {
		t.Errorf("0/0 rel half-width = %g, want 0", got)
	}
	if got := (Interval{Mean: 0, HalfWidth: 1}).RelHalfWidth(); !math.IsInf(got, 1) {
		t.Errorf("1/0 rel half-width = %g, want +Inf", got)
	}
	if got := (Interval{Mean: -4, HalfWidth: 1}).RelHalfWidth(); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("negative-mean rel half-width = %g, want 0.25", got)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Start(0, 1) // value 1 over [0, 10)
	tw.Observe(10, 0)
	tw.Observe(15, 2) // value 0 over [10,15), 2 over [15,20)
	if got := tw.MeanAt(20); !almostEqual(got, (10*1+5*0+5*2)/20.0, 1e-12) {
		t.Errorf("time-weighted mean = %g, want 1.0", got)
	}
	if got := tw.IntegralAt(20); !almostEqual(got, 20, 1e-12) {
		t.Errorf("integral = %g, want 20", got)
	}
}

func TestTimeWeightedBeforeStart(t *testing.T) {
	var tw TimeWeighted
	if tw.MeanAt(5) != 0 || tw.IntegralAt(5) != 0 {
		t.Error("unstarted accumulator should be zero")
	}
	tw.Observe(3, 2) // first Observe acts as Start
	if got := tw.MeanAt(5); !almostEqual(got, 2, 1e-12) {
		t.Errorf("mean after implicit start = %g, want 2", got)
	}
	if got := tw.MeanAt(3); got != 0 {
		t.Errorf("mean over empty interval = %g, want 0", got)
	}
}

func TestTimeWeightedPanicsOnBackwardsTime(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards time")
		}
	}()
	var tw TimeWeighted
	tw.Start(10, 1)
	tw.Observe(5, 0)
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	wantBins := []int64{2, 1, 1, 0, 1}
	for i, want := range wantBins {
		if got := h.Bin(i); got != want {
			t.Errorf("bin %d = %d, want %d", i, got, want)
		}
	}
	if h.Bins() != 5 {
		t.Errorf("bins = %d, want 5", h.Bins())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range should error")
	}
	if _, err := NewHistogram(5, 1, 3); err == nil {
		t.Error("inverted range should error")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{4, 1, 3, 2}
	q, err := Quantile(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q, 2.5, 1e-12) {
		t.Errorf("median = %g, want 2.5", q)
	}
	if q, _ := Quantile(s, 0); q != 1 {
		t.Errorf("q0 = %g, want 1", q)
	}
	if q, _ := Quantile(s, 1); q != 4 {
		t.Errorf("q1 = %g, want 4", q)
	}
	// Input must not be reordered.
	if s[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample should error")
	}
	if _, err := Quantile(s, 1.5); err == nil {
		t.Error("q out of range should error")
	}
	if q, err := Quantile([]float64{7}, 0.9); err != nil || q != 7 {
		t.Errorf("single-element quantile = %g, %v", q, err)
	}
}

func TestQuickWelfordMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		min, max := math.Inf(1), math.Inf(-1)
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			count++
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if count == 0 {
			return w.Mean() == 0
		}
		const eps = 1e-6
		return w.Mean() >= min-eps && w.Mean() <= max+eps && w.Variance() >= -eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			var out []float64
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var whole, wa, wb Welford
		for _, x := range a {
			whole.Add(x)
			wa.Add(x)
		}
		for _, x := range b {
			whole.Add(x)
			wb.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		return math.Abs(wa.Mean()-whole.Mean()) < 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
