package trace

import (
	"encoding/json"

	"vcpusim/internal/obs"
)

// Obs span kinds for scheduling trace events, namespaced so a merged
// JSONL stream can interleave them with the experiment grid's cell.* and
// sim.* spans.
const (
	ObsKindScheduleIn  = "trace.schedule_in"
	ObsKindScheduleOut = "trace.schedule_out"
	ObsKindJobComplete = "trace.job_complete"
)

// ObsTracer adapts an obs.Sink into a fastsim.Tracer, so a single
// telemetry stream can carry scheduling transitions alongside the
// experiment spans. Each trace event becomes one obs.Event whose Kind is
// the namespaced trace kind and whose Attrs is the Event itself; Cell,
// when set, stamps every span (useful when several engines trace into
// one stream). A nil Sink drops everything, preserving the
// nil-means-off convention.
type ObsTracer struct {
	Sink obs.Sink
	Cell string
}

// ScheduleIn forwards a PCPU grant.
func (t *ObsTracer) ScheduleIn(now int64, vcpu, pcpu int) {
	t.emit(ObsKindScheduleIn, Event{Time: now, Kind: KindScheduleIn, VCPU: vcpu, PCPU: pcpu})
}

// ScheduleOut forwards a PCPU revocation.
func (t *ObsTracer) ScheduleOut(now int64, vcpu, pcpu int, expired bool) {
	t.emit(ObsKindScheduleOut, Event{Time: now, Kind: KindScheduleOut, VCPU: vcpu, PCPU: pcpu, Expired: expired})
}

// JobComplete forwards a workload completion.
func (t *ObsTracer) JobComplete(now int64, vcpu int, sync bool) {
	t.emit(ObsKindJobComplete, Event{Time: now, Kind: KindJobComplete, VCPU: vcpu, Sync: sync})
}

func (t *ObsTracer) emit(kind string, e Event) {
	if t.Sink == nil {
		return
	}
	t.Sink.Emit(obs.Event{Kind: kind, Cell: t.Cell, Attrs: e})
}

// FromObs reconstructs the scheduling trace event carried by a trace.*
// span, reporting ok=false for spans of any other kind or with
// unusable attrs. It accepts both in-process spans (Attrs is an Event)
// and spans decoded from JSONL (Attrs is a generic map), so a trace
// written through the obs stream round-trips into the same Events the
// Recorder would have collected.
func FromObs(oe obs.Event) (Event, bool) {
	switch oe.Kind {
	case ObsKindScheduleIn, ObsKindScheduleOut, ObsKindJobComplete:
	default:
		return Event{}, false
	}
	switch a := oe.Attrs.(type) {
	case Event:
		return a, true
	case *Event:
		return *a, true
	default:
		b, err := json.Marshal(a)
		if err != nil {
			return Event{}, false
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return Event{}, false
		}
		return e, true
	}
}
