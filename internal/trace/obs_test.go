package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vcpusim/internal/obs"
)

// driveTracer replays sampleRecorder's call sequence into any tracer.
func driveTracer(tr interface {
	ScheduleIn(now int64, vcpu, pcpu int)
	ScheduleOut(now int64, vcpu, pcpu int, expired bool)
	JobComplete(now int64, vcpu int, sync bool)
}) {
	tr.ScheduleIn(0, 1, 0)
	tr.ScheduleIn(0, 2, 1)
	tr.JobComplete(5, 1, false)
	tr.ScheduleOut(10, 1, 0, true)
	tr.ScheduleIn(10, 3, 0)
	tr.JobComplete(12, 3, true)
	tr.ScheduleOut(20, 3, 0, false)
}

// TestObsTracerRoundTrip writes scheduling events through the obs JSONL
// stream and reconstructs them: the result must equal what the Recorder
// collects from the same call sequence.
func TestObsTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	driveTracer(&ObsTracer{Sink: sink, Cell: "roundtrip"})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	want := sampleRecorder().Events()

	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var oe obs.Event
		if err := json.Unmarshal(sc.Bytes(), &oe); err != nil {
			t.Fatalf("decode span: %v", err)
		}
		if oe.Cell != "roundtrip" {
			t.Fatalf("span lost its cell stamp: %+v", oe)
		}
		if !strings.HasPrefix(oe.Kind, "trace.") {
			t.Fatalf("unexpected span kind %q", oe.Kind)
		}
		e, ok := FromObs(oe)
		if !ok {
			t.Fatalf("span %+v did not convert", oe)
		}
		got = append(got, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestObsTracerInProcess verifies FromObs on spans that never left the
// process (Attrs still a concrete Event), and that non-trace spans are
// rejected.
func TestObsTracerInProcess(t *testing.T) {
	var spans []obs.Event
	sink := sinkFunc(func(e obs.Event) { spans = append(spans, e) })
	driveTracer(&ObsTracer{Sink: sink})
	want := sampleRecorder().Events()
	if len(spans) != len(want) {
		t.Fatalf("%d spans, want %d", len(spans), len(want))
	}
	for i, oe := range spans {
		e, ok := FromObs(oe)
		if !ok || e != want[i] {
			t.Fatalf("span %d: got (%+v, %v), want %+v", i, e, ok, want[i])
		}
	}
	if _, ok := FromObs(obs.Event{Kind: obs.KindCellEnd}); ok {
		t.Fatal("cell.end span converted to a trace event")
	}
}

// TestObsTracerNilSink verifies the nil-means-off convention.
func TestObsTracerNilSink(t *testing.T) {
	driveTracer(&ObsTracer{}) // must not panic
}

type sinkFunc func(obs.Event)

func (f sinkFunc) Emit(e obs.Event) { f(e) }
