// Package trace records scheduling transitions for debugging and
// visualization: an in-memory recorder, streaming JSONL/CSV writers, and a
// text Gantt renderer showing which VCPU held which PCPU over time.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// EventKind classifies trace events.
type EventKind string

// Event kinds.
const (
	KindScheduleIn  EventKind = "schedule_in"
	KindScheduleOut EventKind = "schedule_out"
	KindJobComplete EventKind = "job_complete"
)

// Event is one recorded transition.
type Event struct {
	Time    int64     `json:"t"`
	Kind    EventKind `json:"kind"`
	VCPU    int       `json:"vcpu"`
	PCPU    int       `json:"pcpu,omitempty"`
	Expired bool      `json:"expired,omitempty"`
	Sync    bool      `json:"sync,omitempty"`
}

// Recorder collects events in memory. It implements fastsim.Tracer. The
// zero value is ready to use. Recorder is safe for concurrent use, though
// a single simulation drives it sequentially.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// ScheduleIn records a PCPU grant.
func (r *Recorder) ScheduleIn(now int64, vcpu, pcpu int) {
	r.add(Event{Time: now, Kind: KindScheduleIn, VCPU: vcpu, PCPU: pcpu})
}

// ScheduleOut records a PCPU revocation.
func (r *Recorder) ScheduleOut(now int64, vcpu, pcpu int, expired bool) {
	r.add(Event{Time: now, Kind: KindScheduleOut, VCPU: vcpu, PCPU: pcpu, Expired: expired})
}

// JobComplete records a workload completion.
func (r *Recorder) JobComplete(now int64, vcpu int, sync bool) {
	r.add(Event{Time: now, Kind: KindJobComplete, VCPU: vcpu, Sync: sync})
}

func (r *Recorder) add(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSONL streams the events as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encode event: %w", err)
		}
	}
	return nil
}

// WriteCSV streams the events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "vcpu", "pcpu", "expired", "sync"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			string(e.Kind),
			strconv.Itoa(e.VCPU),
			strconv.Itoa(e.PCPU),
			strconv.FormatBool(e.Expired),
			strconv.FormatBool(e.Sync),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write event: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Gantt renders a text timeline of PCPU occupancy from the recorded
// schedule-in/out events: one row per PCPU, one character per step ticks
// ('.' idle, the VCPU id otherwise). width bounds the row length. It
// infers the PCPU count from the events; use GanttN to render rows for
// PCPUs that never appear.
func (r *Recorder) Gantt(horizon int64, step int64, width int) string {
	return r.GanttN(0, horizon, step, width)
}

// GanttN is Gantt with an explicit PCPU count, so fully idle PCPUs (e.g.
// fragmentation under strict co-scheduling) still render as idle rows.
func (r *Recorder) GanttN(numPCPUs int, horizon int64, step int64, width int) string {
	if step < 1 {
		step = 1
	}
	events := r.Events()
	maxPCPU := numPCPUs - 1
	for _, e := range events {
		if e.PCPU > maxPCPU {
			maxPCPU = e.PCPU
		}
	}
	if maxPCPU < 0 {
		maxPCPU = 0
	}
	cols := int(horizon / step)
	if cols < 1 {
		cols = 1
	}
	if width > 0 && cols > width {
		cols = width
	}
	grid := make([][]rune, maxPCPU+1)
	for p := range grid {
		grid[p] = []rune(strings.Repeat(".", cols))
	}
	// Build per-PCPU occupancy intervals.
	type hold struct {
		vcpu int
		from int64
	}
	open := make(map[int]hold)
	paint := func(p, vcpu int, from, to int64) {
		for c := from / step; c <= (to-1)/step && c < int64(cols); c++ {
			if c >= 0 {
				grid[p][c] = vcpuRune(vcpu)
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	for _, e := range events {
		switch e.Kind {
		case KindScheduleIn:
			open[e.PCPU] = hold{vcpu: e.VCPU, from: e.Time}
		case KindScheduleOut:
			if h, ok := open[e.PCPU]; ok && h.vcpu == e.VCPU {
				paint(e.PCPU, e.VCPU, h.from, e.Time)
				delete(open, e.PCPU)
			}
		}
	}
	for p, h := range open {
		paint(p, h.vcpu, h.from, horizon)
	}
	var b strings.Builder
	for p := range grid {
		fmt.Fprintf(&b, "PCPU%-2d %s\n", p, string(grid[p]))
	}
	return b.String()
}

// vcpuRune maps a VCPU id to a display rune (0-9, a-z, then '#').
func vcpuRune(id int) rune {
	switch {
	case id < 10:
		return rune('0' + id)
	case id < 36:
		return rune('a' + id - 10)
	default:
		return '#'
	}
}
