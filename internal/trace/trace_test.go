package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleRecorder() *Recorder {
	r := &Recorder{}
	r.ScheduleIn(0, 1, 0)
	r.ScheduleIn(0, 2, 1)
	r.JobComplete(5, 1, false)
	r.ScheduleOut(10, 1, 0, true)
	r.ScheduleIn(10, 3, 0)
	r.JobComplete(12, 3, true)
	r.ScheduleOut(20, 3, 0, false)
	return r
}

func TestRecorderCollects(t *testing.T) {
	r := sampleRecorder()
	if r.Len() != 7 {
		t.Fatalf("len = %d, want 7", r.Len())
	}
	events := r.Events()
	if events[0].Kind != KindScheduleIn || events[0].VCPU != 1 {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[3].Kind != KindScheduleOut || !events[3].Expired {
		t.Fatalf("expiry event = %+v", events[3])
	}
	if events[5].Kind != KindJobComplete || !events[5].Sync {
		t.Fatalf("sync completion = %+v", events[5])
	}
	// Events() returns a copy.
	events[0].VCPU = 99
	if r.Events()[0].VCPU != 1 {
		t.Fatal("Events exposed internal slice")
	}
}

func TestWriteJSONL(t *testing.T) {
	var b strings.Builder
	if err := sampleRecorder().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("JSONL lines = %d, want 7", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[3]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindScheduleOut || e.Time != 10 || !e.Expired {
		t.Fatalf("decoded event = %+v", e)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleRecorder().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 8 { // header + 7
		t.Fatalf("CSV lines = %d, want 8", len(lines))
	}
	if lines[0] != "time,kind,vcpu,pcpu,expired,sync" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[4] != "10,schedule_out,1,0,true,false" {
		t.Fatalf("expiry row = %q", lines[4])
	}
}

func TestGantt(t *testing.T) {
	r := &Recorder{}
	r.ScheduleIn(0, 0, 0)
	r.ScheduleOut(10, 0, 0, true)
	r.ScheduleIn(10, 1, 0)
	r.ScheduleOut(20, 1, 0, true)
	out := r.Gantt(20, 1, 100)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", len(lines), out)
	}
	row := lines[0]
	if !strings.Contains(row, "PCPU0") {
		t.Fatalf("row label missing: %q", row)
	}
	cells := strings.Fields(row)[1]
	if len(cells) != 20 {
		t.Fatalf("cells = %d, want 20: %q", len(cells), cells)
	}
	if cells[:10] != "0000000000" || cells[10:] != "1111111111" {
		t.Fatalf("occupancy = %q", cells)
	}
}

func TestGanttOpenInterval(t *testing.T) {
	r := &Recorder{}
	r.ScheduleIn(5, 2, 0)
	// Never scheduled out: painted to the horizon.
	out := r.Gantt(10, 1, 100)
	cells := strings.Fields(strings.TrimSpace(out))[1]
	if cells != ".....22222" {
		t.Fatalf("open interval = %q", cells)
	}
}

func TestGanttNIdleRows(t *testing.T) {
	r := &Recorder{}
	r.ScheduleIn(0, 0, 0)
	out := r.GanttN(3, 10, 1, 100)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d, want 3 (explicit PCPU count):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[2], "..........") {
		t.Fatalf("idle PCPU row not blank: %q", lines[2])
	}
}

func TestGanttEmptyRecorder(t *testing.T) {
	r := &Recorder{}
	out := r.Gantt(10, 1, 100)
	if !strings.Contains(out, "PCPU0") {
		t.Fatalf("empty recorder output: %q", out)
	}
}

func TestGanttStepAndWidth(t *testing.T) {
	r := &Recorder{}
	r.ScheduleIn(0, 0, 0)
	r.ScheduleOut(100, 0, 0, true)
	out := r.Gantt(100, 10, 5)
	cells := strings.Fields(strings.TrimSpace(out))[1]
	if len(cells) != 5 {
		t.Fatalf("width clamp: %d cells, want 5", len(cells))
	}
	// Step below 1 is clamped.
	out = r.Gantt(3, 0, 100)
	if !strings.Contains(out, "000") {
		t.Fatalf("step clamp output: %q", out)
	}
}

func TestVCPURunes(t *testing.T) {
	cases := map[int]rune{0: '0', 9: '9', 10: 'a', 35: 'z', 36: '#', 100: '#'}
	for id, want := range cases {
		if got := vcpuRune(id); got != want {
			t.Errorf("vcpuRune(%d) = %q, want %q", id, got, want)
		}
	}
}
