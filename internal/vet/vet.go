// Package vet implements the `vcpusim vet` subcommand and the standalone
// cmd/vet tool. It bundles the static verifiers that gate a simulation
// study before any replication runs:
//
//   - model verification (internal/sanlint): the SAN model built from an
//     experiment configuration is checked for structural defects —
//     mis-normalized case probabilities, unreachable activities,
//     write-only places, instantaneous livelocks, undeclared join
//     sharing, dangling reward references.
//   - structural verification (internal/sanalyze, -structural): the
//     model is *proved* bounded and deadlock-free — P/T-invariants from
//     the incidence matrix, per-place boundedness certificates, bounded
//     explicit-state reachability with counterexample traces, declared
//     conservation laws, and a dynamic gate/link conformance replay.
//   - source verification (internal/golint): the simulator's own Go
//     source is checked against the determinism contract — no math/rand,
//     no wall-clock reads, no map iteration on simulation hot paths.
//
// With -json every finding is emitted as one JSON object per line (a
// stable machine-readable schema) and the exit status is non-zero only
// when findings exist. Any problem makes the run fail, so the verifiers
// can sit in CI ahead of the (much more expensive) replication sweep.
package vet

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vcpusim/internal/config"
	"vcpusim/internal/core"
	"vcpusim/internal/faults"
	"vcpusim/internal/golint"
	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sanalyze"
	sanalyzefixtures "vcpusim/internal/sanalyze/fixtures"
	"vcpusim/internal/sanlint"
	"vcpusim/internal/sanlint/fixtures"
	"vcpusim/internal/sched"
	"vcpusim/internal/workload"
)

// Deterministic budget for the conformance replay behind -structural:
// one fig8 horizon at a fixed seed, checked firing by firing.
const (
	conformanceHorizon = 2000
	conformanceSeed    = 7
)

// jsonFinding is the stable machine-readable finding schema emitted by
// -json, one object per line. Tool distinguishes the producing verifier
// (sanlint, sanalyze, golint); Model/Component locate model findings,
// File/Line/Col locate source findings.
type jsonFinding struct {
	Tool      string   `json:"tool"`
	Model     string   `json:"model,omitempty"`
	Check     string   `json:"check"`
	Severity  string   `json:"severity"`
	Component string   `json:"component,omitempty"`
	Message   string   `json:"message"`
	File      string   `json:"file,omitempty"`
	Line      int      `json:"line,omitempty"`
	Col       int      `json:"col,omitempty"`
	Trace     []string `json:"trace,omitempty"`
}

// printer renders either human text or JSONL depending on mode. In JSON
// mode all prose (ok lines, report sections) is suppressed: the output
// is exactly one JSON object per finding.
type printer struct {
	w    io.Writer
	json bool
}

func (p *printer) finding(f jsonFinding) {
	if p.json {
		b, _ := json.Marshal(f)
		fmt.Fprintf(p.w, "%s\n", b)
		return
	}
	// Human renderings match each verifier's native format.
	switch {
	case f.File != "":
		fmt.Fprintf(p.w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Check, f.Message)
	default:
		fmt.Fprintf(p.w, "%s: %s: %s: %s\n", f.Severity, f.Check, f.Component, f.Message)
	}
}

func (p *printer) textf(format string, args ...any) {
	if !p.json {
		fmt.Fprintf(p.w, format, args...)
	}
}

// Run executes the vet command line and writes its report to out. It
// returns a non-nil error when any verifier reports a problem, so both
// callers (the subcommand and the standalone binary) exit non-zero on
// findings.
func Run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		root        = fs.String("root", "", "module root for the source lint (default: discovered upward from the working directory)")
		configPath  = fs.String("config", "", "verify the SAN model built from this experiment configuration")
		fixtureDemo = fs.Bool("fixtures", false, "demonstrate the model checks on the seeded-defect fixtures and exit")
		noSource    = fs.Bool("nosource", false, "skip the Go source determinism lint")
		structural  = fs.Bool("structural", false, "prove boundedness/deadlock-freedom structurally (built-in model suite, or the -config model)")
		jsonOut     = fs.Bool("json", false, "emit findings as JSON objects, one per line; exit non-zero only on findings")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	p := &printer{w: out, json: *jsonOut}
	if *fixtureDemo {
		demoFixtures(p)
		return nil
	}
	if *structural {
		return runStructural(p, *configPath)
	}
	if *noSource && *configPath == "" {
		return fmt.Errorf("nothing to verify: -nosource without -config disables every check")
	}

	problems := 0
	if *configPath != "" {
		n, err := lintModel(p, *configPath)
		if err != nil {
			return err
		}
		problems += n
	}
	if !*noSource {
		n, err := lintSource(p, *root)
		if err != nil {
			return err
		}
		problems += n
	}
	if problems > 0 {
		return fmt.Errorf("%d problem(s)", problems)
	}
	return nil
}

// lintModel builds the system model described by an experiment
// configuration and reports its sanlint diagnostics.
func lintModel(p *printer, configPath string) (int, error) {
	sys, err := buildFromConfig(configPath)
	if err != nil {
		return 0, err
	}
	diags := sanlint.AnalyzeModel(sys.Model())
	for _, d := range diags {
		p.finding(jsonFinding{
			Tool:      "sanlint",
			Model:     sys.Model().Name(),
			Check:     d.Check,
			Severity:  d.Severity.String(),
			Component: d.Component,
			Message:   d.Message,
		})
	}
	if len(diags) == 0 {
		p.textf("model %s: ok (%s)\n", sys.Config(), configPath)
	}
	return len(diags), nil
}

// lintSource runs the determinism lint over the module rooted at root,
// discovering the root from the working directory when empty.
func lintSource(p *printer, root string) (int, error) {
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return 0, err
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			return 0, err
		}
	}
	findings, err := golint.Run(golint.DefaultConfig(root))
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		p.finding(jsonFinding{
			Tool:     "golint",
			Check:    f.Rule,
			Severity: "error",
			Message:  f.Message,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
		})
	}
	if len(findings) == 0 {
		p.textf("source %s: ok\n", root)
	}
	return len(findings), nil
}

// buildFromConfig builds the system model an experiment configuration
// describes (including its fault plan, if any).
func buildFromConfig(configPath string) (*core.System, error) {
	f, err := os.Open(configPath)
	if err != nil {
		return nil, err
	}
	exp, err := config.Parse(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	cfg, err := exp.SystemConfig()
	if err != nil {
		return nil, err
	}
	factory, err := exp.SchedulerFactory()
	if err != nil {
		return nil, err
	}
	return core.BuildSystem(cfg, factory(), rng.New(exp.Seed))
}

// structuralModel is one entry of the structural verification suite.
type structuralModel struct {
	name string
	sys  *core.System
}

// builtinStructural composes the shipped model variants: the Figure 8
// barrier system, its spinlock variant (the paper's §II.B extension),
// and the mixed fault campaign with one administratively disabled spec
// (exercising the disabled-activity exclusion).
func builtinStructural() ([]structuralModel, error) {
	wl := func(kind workload.SyncKind) workload.Spec {
		return workload.Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5, SyncKind: kind}
	}
	base := func(kind workload.SyncKind, plan *faults.Plan) core.SystemConfig {
		return core.SystemConfig{
			PCPUs:     2,
			Timeslice: 30,
			VMs: []core.VMConfig{
				{VCPUs: 2, Workload: wl(kind)},
				{VCPUs: 1, Workload: wl(kind)},
				{VCPUs: 1, Workload: wl(kind)},
			},
			Faults: plan,
		}
	}
	dur := &faults.Dist{Dist: "deterministic", Value: 500}
	plan := &faults.Plan{Faults: []faults.Spec{
		{Name: "crash1", Kind: faults.KindPCPUCrash, PCPU: 1, At: 1500, Duration: dur},
		{Name: "slow0", Kind: faults.KindPCPUSlow, PCPU: 0, Factor: 0.5, At: 600, Duration: dur},
		{Name: "storm", Kind: faults.KindVCPUStall, VCPU: 0,
			Every:    &faults.Dist{Dist: "exponential", Rate: 0.002},
			Duration: &faults.Dist{Dist: "uniform", Low: 50, High: 200}, Count: 3},
		{Name: "dormant", Kind: faults.KindMisdecision, At: 4000, Duration: dur, Disabled: true},
	}}
	cases := []struct {
		name string
		cfg  core.SystemConfig
	}{
		{"fig8-barrier", base(workload.SyncBarrier, nil)},
		{"fig8-spinlock", base(workload.SyncSpinlock, nil)},
		{"faults-campaign", base(workload.SyncBarrier, plan)},
	}
	var models []structuralModel
	for _, c := range cases {
		sys, err := core.BuildSystem(c.cfg, sched.NewRoundRobin(c.cfg.Timeslice), rng.New(1))
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", c.name, err)
		}
		models = append(models, structuralModel{name: c.name, sys: sys})
	}
	return models, nil
}

// runStructural proves every suite model bounded and deadlock-free and
// replays it through the gate/link conformance check. Any finding —
// including an unproven certificate — fails the gate.
func runStructural(p *printer, configPath string) error {
	var models []structuralModel
	if configPath != "" {
		sys, err := buildFromConfig(configPath)
		if err != nil {
			return err
		}
		models = []structuralModel{{name: configPath, sys: sys}}
	} else {
		var err error
		models, err = builtinStructural()
		if err != nil {
			return err
		}
	}

	problems := 0
	for _, m := range models {
		n, err := verifyStructure(p, m)
		if err != nil {
			return err
		}
		problems += n
	}
	if problems > 0 {
		return fmt.Errorf("%d problem(s)", problems)
	}
	return nil
}

// verifyStructure runs the full structural pass over one system: static
// analysis with the fault plan's disabled injectors excluded, then the
// dynamic conformance replay.
func verifyStructure(p *printer, m structuralModel) (int, error) {
	prog, err := san.Compile(m.sys.Model())
	if err != nil {
		return 0, err
	}
	in, err := prog.NewInstance()
	if err != nil {
		return 0, err
	}
	if err := m.sys.ArmInstance(in); err != nil {
		return 0, err
	}

	r := sanalyze.AnalyzeModel(m.sys.Model(), sanalyze.Options{
		Disabled: in.DisabledActivityNames(),
	})
	conf, checked, err := sanalyze.Conformance(in, conformanceHorizon, conformanceSeed)
	if err != nil {
		return 0, fmt.Errorf("%s: conformance replay: %w", m.name, err)
	}

	p.textf("=== %s ===\n", m.name)
	if !p.json {
		r.Write(p.w)
	} else {
		for _, f := range r.Findings {
			p.finding(structuralJSON(m.name, f))
		}
	}
	for _, f := range conf {
		p.finding(structuralJSON(m.name, f))
	}
	if len(conf) == 0 {
		p.textf("  conformance: %d firings checked, 0 violations\n", checked)
	}
	return len(r.Findings) + len(conf), nil
}

func structuralJSON(model string, f sanalyze.Finding) jsonFinding {
	return jsonFinding{
		Tool:      "sanalyze",
		Model:     model,
		Check:     f.Check,
		Severity:  f.Severity.String(),
		Component: f.Component,
		Message:   f.Message,
		Trace:     f.Trace,
	}
}

// demoFixtures renders the analyzers' verdicts on every seeded-defect
// fixture — the sanlint shape checks first, then the sanalyze structural
// checks with their counterexamples. The defects are intentional, so the
// demo always succeeds; it exists to show each check firing (and each
// clean counterpart passing).
func demoFixtures(p *printer) {
	for _, fx := range fixtures.All() {
		diags := sanlint.AnalyzeModel(fx.Build())
		if len(diags) == 0 {
			p.textf("%s: clean\n", fx.Name)
			continue
		}
		p.textf("%s:\n", fx.Name)
		for _, d := range diags {
			if p.json {
				p.finding(jsonFinding{
					Tool: "sanlint", Model: fx.Name, Check: d.Check,
					Severity: d.Severity.String(), Component: d.Component, Message: d.Message,
				})
				continue
			}
			p.textf("  %s\n", d)
		}
	}
	for _, fx := range sanalyzefixtures.All() {
		r := sanalyze.AnalyzeModel(fx.Build(), sanalyze.Options{Disabled: fx.Disabled})
		if len(r.Findings) == 0 {
			p.textf("structural:%s: clean\n", fx.Name)
			continue
		}
		p.textf("structural:%s:\n", fx.Name)
		for _, f := range r.Findings {
			if p.json {
				p.finding(structuralJSON(fx.Name, f))
				continue
			}
			p.textf("  %s\n", f)
		}
	}
}

// findModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found upward of the working directory; pass -root")
		}
		dir = parent
	}
}
