// Package vet implements the `vcpusim vet` subcommand and the standalone
// cmd/vet tool. It bundles the two static verifiers that gate a
// simulation study before any replication runs:
//
//   - model verification (internal/sanlint): the SAN model built from an
//     experiment configuration is checked for structural defects —
//     mis-normalized case probabilities, unreachable activities,
//     write-only places, instantaneous livelocks, undeclared join
//     sharing, dangling reward references.
//   - source verification (internal/golint): the simulator's own Go
//     source is checked against the determinism contract — no math/rand,
//     no wall-clock reads, no map iteration on simulation hot paths.
//
// Any problem makes the run fail, so the verifiers can sit in CI ahead
// of the (much more expensive) replication sweep.
package vet

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vcpusim/internal/config"
	"vcpusim/internal/core"
	"vcpusim/internal/golint"
	"vcpusim/internal/rng"
	"vcpusim/internal/sanlint"
	"vcpusim/internal/sanlint/fixtures"
)

// Run executes the vet command line and writes its report to out. It
// returns a non-nil error when any verifier reports a problem, so both
// callers (the subcommand and the standalone binary) exit non-zero on
// findings.
func Run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		root        = fs.String("root", "", "module root for the source lint (default: discovered upward from the working directory)")
		configPath  = fs.String("config", "", "verify the SAN model built from this experiment configuration")
		fixtureDemo = fs.Bool("fixtures", false, "demonstrate the model checks on the seeded-defect fixtures and exit")
		noSource    = fs.Bool("nosource", false, "skip the Go source determinism lint")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *fixtureDemo {
		demoFixtures(out)
		return nil
	}
	if *noSource && *configPath == "" {
		return fmt.Errorf("nothing to verify: -nosource without -config disables every check")
	}

	problems := 0
	if *configPath != "" {
		n, err := lintModel(out, *configPath)
		if err != nil {
			return err
		}
		problems += n
	}
	if !*noSource {
		n, err := lintSource(out, *root)
		if err != nil {
			return err
		}
		problems += n
	}
	if problems > 0 {
		return fmt.Errorf("%d problem(s)", problems)
	}
	return nil
}

// lintModel builds the system model described by an experiment
// configuration and reports its sanlint diagnostics.
func lintModel(out io.Writer, configPath string) (int, error) {
	f, err := os.Open(configPath)
	if err != nil {
		return 0, err
	}
	exp, err := config.Parse(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	cfg, err := exp.SystemConfig()
	if err != nil {
		return 0, err
	}
	factory, err := exp.SchedulerFactory()
	if err != nil {
		return 0, err
	}
	sys, err := core.BuildSystem(cfg, factory(), rng.New(exp.Seed))
	if err != nil {
		return 0, err
	}
	diags := sanlint.AnalyzeModel(sys.Model())
	for _, d := range diags {
		fmt.Fprintf(out, "%s: %s\n", configPath, d)
	}
	if len(diags) == 0 {
		fmt.Fprintf(out, "model %s: ok (%s)\n", cfg, configPath)
	}
	return len(diags), nil
}

// lintSource runs the determinism lint over the module rooted at root,
// discovering the root from the working directory when empty.
func lintSource(out io.Writer, root string) (int, error) {
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			return 0, err
		}
		root, err = findModuleRoot(wd)
		if err != nil {
			return 0, err
		}
	}
	findings, err := golint.Run(golint.DefaultConfig(root))
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) == 0 {
		fmt.Fprintf(out, "source %s: ok\n", root)
	}
	return len(findings), nil
}

// demoFixtures renders the analyzer's verdict on every seeded-defect
// fixture. The defects are intentional, so the demo always succeeds; it
// exists to show each check firing (and each clean counterpart passing).
func demoFixtures(out io.Writer) {
	for _, fx := range fixtures.All() {
		diags := sanlint.AnalyzeModel(fx.Build())
		if len(diags) == 0 {
			fmt.Fprintf(out, "%s: clean\n", fx.Name)
			continue
		}
		fmt.Fprintf(out, "%s:\n", fx.Name)
		for _, d := range diags {
			fmt.Fprintf(out, "  %s\n", d)
		}
	}
}

// findModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found upward of the working directory; pass -root")
		}
		dir = parent
	}
}
