package vet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig8Config is a minimal valid experiment configuration (the paper's
// Figure 8 setup under RCS).
const fig8Config = `{
  "pcpus": 2,
  "timeslice": 30,
  "scheduler": {"name": "RCS"},
  "horizonTicks": 100,
  "seed": 7,
  "vms": [
    {"name": "VM1", "vcpus": 2, "load": {"dist": "uniform", "low": 1, "high": 10}, "syncEveryN": 5},
    {"name": "VM2", "vcpus": 1, "load": {"dist": "uniform", "low": 1, "high": 10}, "syncEveryN": 5}
  ]
}`

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestModelLintCleanConfig(t *testing.T) {
	var b strings.Builder
	args := []string{"-nosource", "-config", writeConfig(t, fig8Config)}
	if err := Run(args, &b); err != nil {
		t.Fatalf("clean config flagged: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok") {
		t.Errorf("output missing ok line:\n%s", b.String())
	}
}

func TestModelLintMissingConfig(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-nosource", "-config", "does/not/exist.json"}, &b); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestFixturesDemo(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-fixtures"}, &b); err != nil {
		t.Fatalf("fixture demo failed: %v", err)
	}
	out := b.String()
	// Every check kind fires on its defective fixture and every clean
	// counterpart passes.
	for _, want := range []string{
		"case-weights", "unknown-link", "place-never-read",
		"place-never-written", "dead-activity", "instant-cycle",
		"unshared-join", "reward-ref", "isolated-place", ": clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fixture demo missing %q:\n%s", want, out)
		}
	}
}

func TestSourceLintRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Run([]string{"-root", root}, &b); err != nil {
		t.Fatalf("repository source flagged: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok") {
		t.Errorf("output missing ok line:\n%s", b.String())
	}
}

func TestSourceLintFindsDefects(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/des/clock.go": `package des

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	err := Run([]string{"-root", root}, &b)
	if err == nil {
		t.Fatalf("defective module passed:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "problem") {
		t.Errorf("err = %v, want problem count", err)
	}
	if !strings.Contains(b.String(), "wall-clock") {
		t.Errorf("output missing wall-clock finding:\n%s", b.String())
	}
}

func TestUnexpectedArgument(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"extra"}, &b); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestNothingToVerifyRejected(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-nosource"}, &b); err == nil {
		t.Fatal("-nosource without -config silently verified nothing")
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := findModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve symlinks before comparing (macOS /tmp style indirection).
	wantResolved, _ := filepath.EvalSymlinks(root)
	gotResolved, _ := filepath.EvalSymlinks(got)
	if gotResolved != wantResolved {
		t.Errorf("root = %q, want %q", got, root)
	}
}
