package vet

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fig8Config is a minimal valid experiment configuration (the paper's
// Figure 8 setup under RCS).
const fig8Config = `{
  "pcpus": 2,
  "timeslice": 30,
  "scheduler": {"name": "RCS"},
  "horizonTicks": 100,
  "seed": 7,
  "vms": [
    {"name": "VM1", "vcpus": 2, "load": {"dist": "uniform", "low": 1, "high": 10}, "syncEveryN": 5},
    {"name": "VM2", "vcpus": 1, "load": {"dist": "uniform", "low": 1, "high": 10}, "syncEveryN": 5}
  ]
}`

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestModelLintCleanConfig(t *testing.T) {
	var b strings.Builder
	args := []string{"-nosource", "-config", writeConfig(t, fig8Config)}
	if err := Run(args, &b); err != nil {
		t.Fatalf("clean config flagged: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok") {
		t.Errorf("output missing ok line:\n%s", b.String())
	}
}

func TestModelLintMissingConfig(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-nosource", "-config", "does/not/exist.json"}, &b); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestFixturesDemo(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-fixtures"}, &b); err != nil {
		t.Fatalf("fixture demo failed: %v", err)
	}
	out := b.String()
	// Every check kind fires on its defective fixture and every clean
	// counterpart passes.
	for _, want := range []string{
		"case-weights", "unknown-link", "place-never-read",
		"place-never-written", "dead-activity", "instant-cycle",
		"unshared-join", "reward-ref", "isolated-place", ": clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fixture demo missing %q:\n%s", want, out)
		}
	}
}

func TestSourceLintRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Run([]string{"-root", root}, &b); err != nil {
		t.Fatalf("repository source flagged: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "ok") {
		t.Errorf("output missing ok line:\n%s", b.String())
	}
}

func TestSourceLintFindsDefects(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/des/clock.go": `package des

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	err := Run([]string{"-root", root}, &b)
	if err == nil {
		t.Fatalf("defective module passed:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "problem") {
		t.Errorf("err = %v, want problem count", err)
	}
	if !strings.Contains(b.String(), "wall-clock") {
		t.Errorf("output missing wall-clock finding:\n%s", b.String())
	}
}

func TestUnexpectedArgument(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"extra"}, &b); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestNothingToVerifyRejected(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-nosource"}, &b); err == nil {
		t.Fatal("-nosource without -config silently verified nothing")
	}
}

// TestStructuralBuiltinSuite is the CI gate: every shipped model variant
// (Figure 8 barrier, spinlock, fault campaign with a disabled spec) must
// prove bounded and deadlock-free, its conservation law must verify, and
// the conformance replay must be violation-free. The rendered report is
// pinned as a golden file so certificate regressions (a place silently
// losing its bound proof) surface as a diff.
func TestStructuralBuiltinSuite(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-structural"}, &b); err != nil {
		t.Fatalf("structural gate failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"fig8-barrier", "fig8-spinlock", "faults-campaign",
		"boundedness: PROVED", "deadlock: PROVED FREE",
		"pcpu-count", "conformance:", "0 violations",
		"disabled:", // the dormant spec's injector is excluded, not dead
	} {
		if !strings.Contains(out, want) {
			t.Errorf("structural report missing %q", want)
		}
	}
	if strings.Contains(out, "dead-activity") {
		t.Errorf("disabled injector reported dead:\n%s", out)
	}

	golden := filepath.Join("testdata", "structural.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden report missing (run with -update): %v", err)
	}
	if string(want) != out {
		t.Errorf("structural report drifted from golden (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestStructuralConfig verifies -structural composes with -config: the
// fig8 experiment model passes the full structural gate.
func TestStructuralConfig(t *testing.T) {
	var b strings.Builder
	args := []string{"-structural", "-config", writeConfig(t, fig8Config)}
	if err := Run(args, &b); err != nil {
		t.Fatalf("fig8 config failed structural gate: %v\n%s", err, b.String())
	}
	if !strings.Contains(b.String(), "boundedness: PROVED") {
		t.Errorf("report missing boundedness proof:\n%s", b.String())
	}
}

// TestStructuralJSONCleanSilent: -structural -json on the passing suite
// emits nothing — the machine-readable stream carries findings only.
func TestStructuralJSONCleanSilent(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-structural", "-json"}, &b); err != nil {
		t.Fatalf("structural gate failed: %v\n%s", err, b.String())
	}
	if b.Len() != 0 {
		t.Errorf("clean JSON run produced output:\n%s", b.String())
	}
}

// TestJSONFindings checks the JSONL schema on a defective module: one
// valid JSON object per line, with the documented fields populated, and
// the decorative ok/report prose suppressed.
func TestJSONFindings(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/fake\n\ngo 1.22\n",
		"internal/des/clock.go": `package des

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	err := Run([]string{"-json", "-root", root}, &b)
	if err == nil {
		t.Fatalf("defective module passed:\n%s", b.String())
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no JSON findings emitted")
	}
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if f.Tool != "golint" || f.Check == "" || f.Message == "" || f.File == "" || f.Line == 0 {
			t.Errorf("finding incomplete: %+v", f)
		}
	}
}

// TestJSONFixturesDemo: the fixture demo in JSON mode streams both
// sanlint and sanalyze findings, including counterexample traces.
func TestJSONFixturesDemo(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-fixtures", "-json"}, &b); err != nil {
		t.Fatalf("fixture demo failed: %v", err)
	}
	tools := map[string]bool{}
	sawTrace := false
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		tools[f.Tool] = true
		if len(f.Trace) > 0 {
			sawTrace = true
		}
	}
	if !tools["sanlint"] || !tools["sanalyze"] {
		t.Errorf("tools seen = %v, want sanlint and sanalyze", tools)
	}
	if !sawTrace {
		t.Error("no finding carried a counterexample trace")
	}
}

// TestFixturesDemoStructural: the human fixture demo shows the sanalyze
// seeded defects firing with counterexamples, and the clean counterparts
// passing.
func TestFixturesDemoStructural(t *testing.T) {
	var b strings.Builder
	if err := Run([]string{"-fixtures"}, &b); err != nil {
		t.Fatalf("fixture demo failed: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"structural:unbounded-place-bad", "unbounded-place",
		"structural:deadlock-bad", "deadlock", "counterexample:",
		"structural:dead-activity-bad", "dead-activity",
		"structural:conservation-bad", "conservation",
		"structural:deadlock-ok: clean", "structural:disabled-not-dead: clean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fixture demo missing %q:\n%s", want, out)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	nested := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := findModuleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve symlinks before comparing (macOS /tmp style indirection).
	wantResolved, _ := filepath.EvalSymlinks(root)
	gotResolved, _ := filepath.EvalSymlinks(got)
	if gotResolved != wantResolved {
		t.Errorf("root = %q, want %q", got, root)
	}
}
