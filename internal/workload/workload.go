// Package workload implements the framework's workload model: the
// distribution of load durations (the time a VCPU needs to process one
// workload) and the synchronization-point policy (the paper's 1:N sync
// ratio, where every Nth workload carries a barrier synchronization point).
package workload

import (
	"fmt"
	"math"

	"vcpusim/internal/rng"
)

// SyncKind selects the synchronization mechanism a VM's sync points model.
// The paper's framework implements barriers only and lists "represent more
// synchronization mechanisms" as future work; the spinlock kind is this
// repository's extension covering the lock-holder-preemption scenario the
// paper's Section II.B motivates.
type SyncKind int

// Synchronization mechanisms.
const (
	// SyncBarrier is the paper's mechanism: a sync point stops workload
	// generation until all previously issued jobs complete.
	SyncBarrier SyncKind = iota
	// SyncSpinlock models a guest kernel critical section: a sync-point
	// workload holds a VM-wide lock while in flight. Generation is not
	// blocked, but whenever a lock holder is descheduled (the semantic
	// gap: the hypervisor preempted a lock-holding VCPU), the VM's other
	// BUSY VCPUs spin — they consume their PCPUs without making progress.
	SyncSpinlock
)

// String names the kind.
func (k SyncKind) String() string {
	switch k {
	case SyncBarrier:
		return "barrier"
	case SyncSpinlock:
		return "spinlock"
	default:
		return fmt.Sprintf("SyncKind(%d)", int(k))
	}
}

// Spec parameterizes a VM's workload generator.
type Spec struct {
	// Load is the distribution of load durations in clock ticks. Samples
	// are rounded up to at least one tick.
	Load rng.Distribution
	// SyncEveryN makes every Nth generated workload a synchronization
	// point (the paper's "1:N" sync ratio; 1:5 means one sync point per
	// five workloads). Zero disables synchronization points.
	SyncEveryN int
	// SyncProbabilistic, when true, draws sync points as independent
	// Bernoulli(1/SyncEveryN) trials instead of deterministically every
	// Nth workload.
	SyncProbabilistic bool
	// SyncKind selects the synchronization mechanism (barrier by
	// default).
	SyncKind SyncKind
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Load == nil {
		return fmt.Errorf("workload: nil load distribution")
	}
	if s.SyncEveryN < 0 {
		return fmt.Errorf("workload: negative sync ratio %d", s.SyncEveryN)
	}
	if s.SyncProbabilistic && s.SyncEveryN == 0 {
		return fmt.Errorf("workload: probabilistic sync points need SyncEveryN > 0")
	}
	if s.SyncKind != SyncBarrier && s.SyncKind != SyncSpinlock {
		return fmt.Errorf("workload: unknown sync kind %d", int(s.SyncKind))
	}
	return nil
}

// String renders the spec in the paper's notation.
func (s Spec) String() string {
	if s.SyncEveryN == 0 {
		return fmt.Sprintf("load=%v, no sync", s.Load)
	}
	mode := ""
	if s.SyncProbabilistic {
		mode = " (probabilistic)"
	}
	return fmt.Sprintf("load=%v, sync=1:%d %v%s", s.Load, s.SyncEveryN, s.SyncKind, mode)
}

// Workload is one generated unit of work.
type Workload struct {
	// Load is the processing time in ticks (>= 1).
	Load int64
	// Sync marks the workload as a barrier synchronization point: the VM
	// stops generating work until all previously issued jobs complete.
	Sync bool
}

// Generator produces the workload stream of one VM. It is not
// goroutine-safe; each replication owns its generators.
type Generator struct {
	spec  Spec
	src   *rng.Source
	count int
}

// NewGenerator builds a generator for spec drawing from src. It returns an
// error if the spec is invalid or src is nil.
func NewGenerator(spec Spec, src *rng.Source) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("workload: nil random source")
	}
	return &Generator{spec: spec, src: src}, nil
}

// Reseed rewinds the generator for a new replication: its stream is
// re-initialized in place to the state a fresh NewGenerator(spec,
// parent.Split()) would hold when seed came from the same parent.Uint64()
// draw, and the workload counter restarts (so deterministic 1:N sync
// points realign to the stream). It never allocates.
func (g *Generator) Reseed(seed uint64) {
	g.src.Reseed(seed)
	g.count = 0
}

// Next produces the next workload.
func (g *Generator) Next() Workload {
	g.count++
	load := int64(math.Ceil(g.spec.Load.Sample(g.src)))
	if load < 1 {
		load = 1
	}
	w := Workload{Load: load}
	switch {
	case g.spec.SyncEveryN == 0:
		// no sync points
	case g.spec.SyncProbabilistic:
		w.Sync = g.src.Float64() < 1/float64(g.spec.SyncEveryN)
	default:
		w.Sync = g.count%g.spec.SyncEveryN == 0
	}
	return w
}

// Generated returns how many workloads have been produced.
func (g *Generator) Generated() int { return g.count }
