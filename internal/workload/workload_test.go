package workload

import (
	"math"
	"testing"
	"testing/quick"

	"vcpusim/internal/rng"
)

func validSpec() Spec {
	return Spec{Load: rng.Uniform{Low: 1, High: 10}, SyncEveryN: 5}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"nil load", Spec{SyncEveryN: 5}},
		{"negative sync", Spec{Load: rng.Deterministic{Value: 1}, SyncEveryN: -1}},
		{"probabilistic without N", Spec{Load: rng.Deterministic{Value: 1}, SyncProbabilistic: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestSpecString(t *testing.T) {
	if got := validSpec().String(); got == "" {
		t.Fatal("empty string")
	}
	noSync := Spec{Load: rng.Deterministic{Value: 2}}
	if got := noSync.String(); got == "" {
		t.Fatal("empty string for no-sync spec")
	}
}

func TestNewGeneratorErrors(t *testing.T) {
	if _, err := NewGenerator(Spec{}, rng.New(1)); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewGenerator(validSpec(), nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestDeterministicSyncEveryNth(t *testing.T) {
	g, err := NewGenerator(Spec{Load: rng.Deterministic{Value: 3}, SyncEveryN: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		w := g.Next()
		wantSync := i%4 == 0
		if w.Sync != wantSync {
			t.Fatalf("workload %d: sync = %v, want %v", i, w.Sync, wantSync)
		}
	}
	if g.Generated() != 40 {
		t.Fatalf("generated = %d, want 40", g.Generated())
	}
}

func TestNoSyncWhenDisabled(t *testing.T) {
	g, err := NewGenerator(Spec{Load: rng.Deterministic{Value: 3}}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if g.Next().Sync {
			t.Fatal("sync point generated with SyncEveryN=0")
		}
	}
}

func TestProbabilisticSyncRate(t *testing.T) {
	g, err := NewGenerator(Spec{
		Load:              rng.Deterministic{Value: 1},
		SyncEveryN:        5,
		SyncProbabilistic: true,
	}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	syncs := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Sync {
			syncs++
		}
	}
	got := float64(syncs) / n
	if math.Abs(got-0.2) > 0.01 {
		t.Fatalf("probabilistic sync rate = %g, want ~0.2", got)
	}
}

func TestLoadsAtLeastOneTick(t *testing.T) {
	// A distribution that can produce values below one must be clamped.
	g, err := NewGenerator(Spec{Load: rng.Uniform{Low: -2, High: 0.5}}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if w := g.Next(); w.Load < 1 {
			t.Fatalf("load %d below one tick", w.Load)
		}
	}
}

func TestLoadCeiling(t *testing.T) {
	// A constant 2.3 must round up to 3 ticks.
	g, err := NewGenerator(Spec{Load: rng.Deterministic{Value: 2.3}}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if w := g.Next(); w.Load != 3 {
		t.Fatalf("load = %d, want ceil(2.3) = 3", w.Load)
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	mk := func() *Generator {
		g, err := NewGenerator(validSpec(), rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators diverged at workload %d", i)
		}
	}
}

func TestQuickLoadsPositiveAndSyncPeriodic(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		period := int(n%10) + 2
		g, err := NewGenerator(Spec{
			Load:       rng.Exponential{Rate: 0.3},
			SyncEveryN: period,
		}, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 1; i <= 100; i++ {
			w := g.Next()
			if w.Load < 1 {
				return false
			}
			if w.Sync != (i%period == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyncKindValidation(t *testing.T) {
	s := Spec{Load: rng.Deterministic{Value: 1}, SyncEveryN: 2, SyncKind: SyncKind(9)}
	if err := s.Validate(); err == nil {
		t.Fatal("unknown sync kind accepted")
	}
	s.SyncKind = SyncSpinlock
	if err := s.Validate(); err != nil {
		t.Fatalf("spinlock kind rejected: %v", err)
	}
}

func TestSyncKindStrings(t *testing.T) {
	cases := map[SyncKind]string{
		SyncBarrier:  "barrier",
		SyncSpinlock: "spinlock",
		SyncKind(7):  "SyncKind(7)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
