// Package vcpusim is a simulation framework for evaluating virtual CPU
// (VCPU) scheduling algorithms, reproducing "A Simulation Framework to
// Evaluate Virtual CPU Scheduling Algorithms" (Pham, Li, Estrada,
// Kalbarczyk, Iyer — IEEE ICDCS Workshops 2013).
//
// A virtualization system is assembled from configuration — physical CPUs,
// a hypervisor timeslice, and virtual machines, each with a number of
// VCPUs and a stochastic workload characterization — and simulated under a
// pluggable VCPU scheduling algorithm. Three algorithms from the paper
// ship ready-made (Round-Robin, Strict Co-Scheduling, Relaxed
// Co-Scheduling) plus two extensions (Balance scheduling and a
// proportional-share Credit scheduler), and any user algorithm can be
// plugged in by implementing the Scheduler interface — the Go counterpart
// of the paper's C function-call interface.
//
// Two interchangeable engines execute the model: a Stochastic Activity
// Network engine that mirrors the paper's Möbius-based composed models,
// and a direct tick-loop engine cross-validated to produce bit-identical
// results. The Experiment runner executes confidence-interval controlled
// replications (95 % confidence, <0.1 relative half-width, as in the
// paper).
//
// Quickstart:
//
//	cfg := vcpusim.SystemConfig{
//		PCPUs:     4,
//		Timeslice: 30,
//		VMs: []vcpusim.VMConfig{
//			{Name: "web", VCPUs: 2, Workload: vcpusim.WorkloadSpec{
//				Load: vcpusim.Uniform{Low: 1, High: 10}, SyncEveryN: 5}},
//		},
//	}
//	metrics, err := vcpusim.Run(cfg, vcpusim.RoundRobin(30), 20000, 1)
//
// See the examples directory for complete programs.
package vcpusim

import (
	"context"
	"io"

	"vcpusim/internal/core"
	"vcpusim/internal/experiments"
	"vcpusim/internal/fastsim"
	"vcpusim/internal/faults"
	"vcpusim/internal/report"
	"vcpusim/internal/rng"
	"vcpusim/internal/san"
	"vcpusim/internal/sched"
	"vcpusim/internal/sim"
	"vcpusim/internal/stats"
	"vcpusim/internal/trace"
	"vcpusim/internal/workload"
)

// Core model types.
type (
	// SystemConfig describes a complete virtualization system.
	SystemConfig = core.SystemConfig
	// VMConfig describes one virtual machine.
	VMConfig = core.VMConfig
	// WorkloadSpec parameterizes a VM's workload generator.
	WorkloadSpec = workload.Spec
	// Workload is one generated unit of work.
	Workload = workload.Workload

	// Scheduler is the pluggable VCPU scheduling algorithm interface (the
	// paper's C function-call interface).
	Scheduler = core.Scheduler
	// SchedulerFactory constructs a fresh Scheduler per replication.
	SchedulerFactory = core.SchedulerFactory
	// VCPUView is the per-VCPU state passed to scheduling functions.
	VCPUView = core.VCPUView
	// PCPUView is the per-PCPU state passed to scheduling functions.
	PCPUView = core.PCPUView
	// Actions records a scheduling function's decisions.
	Actions = core.Actions
	// Status is a VCPU state (Inactive, Ready, or Busy).
	Status = core.Status
)

// VCPU states.
const (
	Inactive = core.Inactive
	Ready    = core.Ready
	Busy     = core.Busy
)

// SyncKind selects a VM's synchronization mechanism.
type SyncKind = workload.SyncKind

// Synchronization mechanisms: the paper's barrier, and the spinlock
// (lock-holder-preemption) extension.
const (
	SyncBarrier  = workload.SyncBarrier
	SyncSpinlock = workload.SyncSpinlock
)

// Workload-duration distributions.
type (
	// Distribution produces random load durations.
	Distribution = rng.Distribution
	// Deterministic is a constant distribution.
	Deterministic = rng.Deterministic
	// Uniform is the continuous uniform distribution on [Low, High).
	Uniform = rng.Uniform
	// Exponential is the exponential distribution with the given rate.
	Exponential = rng.Exponential
	// Erlang is a sum of K exponentials.
	Erlang = rng.Erlang
	// Normal is the normal distribution.
	Normal = rng.Normal
	// LogNormal is the log-normal distribution.
	LogNormal = rng.LogNormal
	// Geometric counts trials to first success.
	Geometric = rng.Geometric
)

// Simulation and reporting types.
type (
	// SimOptions controls replications and CI-based stopping.
	SimOptions = sim.Options
	// Summary aggregates an experiment's replications.
	Summary = sim.Summary
	// Interval is a confidence interval.
	Interval = stats.Interval
	// Table is a rendered experiment result.
	Table = report.Table
	// Recorder collects schedule-in/out traces (attach with RunTraced).
	Recorder = trace.Recorder
	// ExperimentParams parameterizes the paper-figure regenerators.
	ExperimentParams = experiments.Params
)

// Built-in schedulers. Each call returns a factory producing a fresh
// algorithm instance per replication.

// RoundRobin is the paper's RRS: a global fair rotation of VCPUs.
func RoundRobin(timeslice int64) SchedulerFactory {
	return func() Scheduler { return sched.NewRoundRobin(timeslice) }
}

// StrictCo is the paper's SCS: gang scheduling with all-or-nothing
// co-starts and co-stops per VM.
func StrictCo(timeslice int64) SchedulerFactory {
	return func() Scheduler { return sched.NewStrictCo(timeslice) }
}

// RelaxedCoParams configures the relaxed co-scheduler.
type RelaxedCoParams = sched.RelaxedCoParams

// RelaxedCo is the paper's RCS: best-effort co-scheduling with a
// skew-threshold forced-co-start regime.
func RelaxedCo(p RelaxedCoParams) SchedulerFactory {
	return func() Scheduler { return sched.NewRelaxedCo(p) }
}

// Balance is the VCPU-stacking-avoidance scheduler of Sukwong & Kim
// (extension beyond the paper).
func Balance(timeslice int64) SchedulerFactory {
	return func() Scheduler { return sched.NewBalance(timeslice) }
}

// CreditParams configures the proportional-share scheduler.
type CreditParams = sched.CreditParams

// HybridParams configures the hybrid scheduler.
type HybridParams = sched.HybridParams

// Hybrid is the hybrid scheduling framework of Weng et al. (the paper's
// related work [7]): listed VMs are gang-scheduled, the rest are scheduled
// per-VCPU (extension beyond the paper).
func Hybrid(p HybridParams) SchedulerFactory {
	return func() Scheduler { return sched.NewHybrid(p) }
}

// Credit is a proportional-share scheduler in the spirit of Xen's credit
// scheduler (extension beyond the paper).
func Credit(p CreditParams) SchedulerFactory {
	return func() Scheduler { return sched.NewCredit(p) }
}

// SchedulerByName resolves a registered algorithm name ("RRS", "SCS",
// "RCS", "Balance", "Credit") with shared parameters.
func SchedulerByName(name string, p SchedParams) (SchedulerFactory, error) {
	return sched.Factory(name, p)
}

// SchedParams carries the knobs shared by the built-in algorithms.
type SchedParams = sched.Params

// Run simulates one replication of cfg under the scheduler on the fast
// engine for horizon ticks and returns the reward metrics (see
// MetricNames for the naming scheme).
func Run(cfg SystemConfig, factory SchedulerFactory, horizon int64, seed uint64) (map[string]float64, error) {
	return fastsim.RunReplication(cfg, factory, horizon, seed)
}

// RunSAN simulates one replication on the Stochastic Activity Network
// engine — the paper's modeling substrate — producing the same metrics as
// Run (the engines are cross-validated to agree exactly).
func RunSAN(cfg SystemConfig, factory SchedulerFactory, horizon int64, seed uint64) (map[string]float64, error) {
	return core.RunReplication(cfg, factory, float64(horizon), seed)
}

// RunTraced simulates one replication on the fast engine with a trace
// recorder attached, returning the metrics and the recorded schedule
// events.
func RunTraced(cfg SystemConfig, factory SchedulerFactory, horizon int64, seed uint64) (map[string]float64, *Recorder, error) {
	eng, err := fastsim.New(cfg, factory(), seed)
	if err != nil {
		return nil, nil, err
	}
	rec := &trace.Recorder{}
	eng.SetTracer(rec)
	metrics, err := eng.Run(horizon)
	if err != nil {
		return nil, nil, err
	}
	return metrics, rec, nil
}

// RunInterval is Run with transient removal: it simulates horizon ticks
// but measures metrics over [warmup, horizon) only.
func RunInterval(cfg SystemConfig, factory SchedulerFactory, warmup, horizon int64, seed uint64) (map[string]float64, error) {
	return fastsim.RunReplicationInterval(cfg, factory, warmup, horizon, seed)
}

// RunWindowed simulates one long run (after a warmup prefix) and returns
// the metrics of every consecutive window of the given length — the input
// to BatchMeans for single-run steady-state estimation.
func RunWindowed(cfg SystemConfig, factory SchedulerFactory, warmup, horizon, window int64, seed uint64) ([]map[string]float64, error) {
	eng, err := fastsim.New(cfg, factory(), seed)
	if err != nil {
		return nil, err
	}
	return eng.RunWindowed(warmup, horizon, window)
}

// BatchMeans estimates steady-state metrics from the windows of one long
// run (the method of batch means); see RunWindowed.
func BatchMeans(windows []map[string]float64, level float64) (Summary, error) {
	return sim.BatchMeans(windows, level)
}

// Replicate runs confidence-interval controlled replications of cfg under
// the scheduler (95 % confidence, <0.1 relative half-width by default, the
// paper's settings) and returns per-metric intervals.
func Replicate(ctx context.Context, cfg SystemConfig, factory SchedulerFactory, horizon int64, opts SimOptions) (Summary, error) {
	rep := func(ctx context.Context, _ int, seed uint64) (map[string]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return fastsim.RunReplication(cfg, factory, horizon, seed)
	}
	return sim.Run(ctx, rep, opts)
}

// Metric names for the Run/Replicate result maps.

// AvailabilityMetric names the per-VCPU availability metric (fraction of
// time ACTIVE) for VCPU sibling of VM vm (both zero-based).
func AvailabilityMetric(vm, sibling int) string { return core.AvailabilityMetric(vm, sibling) }

// VCPUUtilizationMetric names the per-VCPU utilization metric (fraction of
// time BUSY).
func VCPUUtilizationMetric(vm, sibling int) string { return core.VCPUUtilizationMetric(vm, sibling) }

// PCPUUtilizationMetric names the per-PCPU utilization metric (fraction of
// time ASSIGNED).
func PCPUUtilizationMetric(p int) string { return core.PCPUUtilizationMetric(p) }

// Aggregate metric names.
const (
	AvailabilityAvgMetric      = core.AvailabilityAvgMetric
	VCPUUtilizationAvgMetric   = core.VCPUUtilizationAvgMetric
	PCPUUtilizationAvgMetric   = core.PCPUUtilizationAvgMetric
	BlockedFractionMetric      = core.BlockedFractionMetric
	SpinFractionMetric         = core.SpinFractionMetric
	EffectiveUtilizationMetric = core.EffectiveUtilizationMetric
)

// Paper-figure regenerators (see EXPERIMENTS.md).

// DefaultExperimentParams returns the parameterization used for
// EXPERIMENTS.md.
func DefaultExperimentParams() ExperimentParams { return experiments.Defaults() }

// Figure8 regenerates the paper's Figure 8 (VCPU availability/fairness).
func Figure8(ctx context.Context, p ExperimentParams) (*Table, error) {
	return experiments.Figure8(ctx, p)
}

// Figure9 regenerates the paper's Figure 9 (PCPU utilization).
func Figure9(ctx context.Context, p ExperimentParams) (*Table, error) {
	return experiments.Figure9(ctx, p)
}

// Figure10 regenerates the paper's Figure 10 (VCPU utilization vs sync
// rate), returning the scheduled-time and total-time normalizations.
func Figure10(ctx context.Context, p ExperimentParams) (efficiency, absolute *Table, err error) {
	return experiments.Figure10(ctx, p)
}

// Fault injection (dependability evaluation on the SAN engine): set
// SystemConfig.Faults to a FaultPlan and run with RunSAN or the SAN-backed
// Replicate path. See examples/faultcampaign.

// Fault-injection types.
type (
	// FaultPlan is a declarative fault-injection campaign.
	FaultPlan = faults.Plan
	// FaultSpec is one fault event source of a campaign.
	FaultSpec = faults.Spec
	// FaultDist is a fault-timing distribution (deterministic, uniform,
	// exponential, or erlang).
	FaultDist = faults.Dist
)

// Fault kinds.
const (
	FaultPCPUCrash   = faults.KindPCPUCrash
	FaultPCPUSlow    = faults.KindPCPUSlow
	FaultVCPUStall   = faults.KindVCPUStall
	FaultMisdecision = faults.KindMisdecision
)

// Dependability metric names produced by fault-injected replications.
const (
	FaultDegradedMetric         = faults.DegradedMetric
	FaultCapacityMetric         = faults.CapacityMetric
	FaultAvailUnderFaultsMetric = faults.AvailUnderFaultsMetric
	FaultMTTRMetric             = faults.MTTRMetric
	FaultInjectsMetric          = faults.InjectsMetric
	FaultRecoversMetric         = faults.RecoversMetric
	FaultWorkLostMetric         = faults.WorkLostMetric
	FaultMisdecisionsMetric     = faults.MisdecisionsMetric
)

// ParseFaultPlan reads a fault-injection campaign from JSON: either
// {"faults": [...]} or a bare spec array.
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) { return faults.Parse(r) }

// BuildModel composes the Stochastic Activity Network model of cfg without
// running it, for inspection or DOT export via Model().Dot().
func BuildModel(cfg SystemConfig, factory SchedulerFactory, seed uint64) (*core.System, error) {
	return core.BuildSystem(cfg, factory(), rng.New(seed))
}

// SANModel is the composed Stochastic Activity Network model type returned
// by BuildModel().Model().
type SANModel = san.Model
