package vcpusim_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"vcpusim"
)

func testConfig() vcpusim.SystemConfig {
	return vcpusim.SystemConfig{
		PCPUs:     2,
		Timeslice: 20,
		VMs: []vcpusim.VMConfig{
			{Name: "a", VCPUs: 2, Workload: vcpusim.WorkloadSpec{
				Load: vcpusim.Uniform{Low: 1, High: 10}, SyncEveryN: 5}},
			{Name: "b", VCPUs: 1, Workload: vcpusim.WorkloadSpec{
				Load: vcpusim.Exponential{Rate: 0.2}}},
		},
	}
}

func TestRunProducesMetrics(t *testing.T) {
	m, err := vcpusim.Run(testConfig(), vcpusim.RoundRobin(20), 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		vcpusim.AvailabilityMetric(0, 0),
		vcpusim.AvailabilityMetric(0, 1),
		vcpusim.AvailabilityMetric(1, 0),
		vcpusim.VCPUUtilizationMetric(0, 0),
		vcpusim.PCPUUtilizationMetric(0),
		vcpusim.PCPUUtilizationMetric(1),
		vcpusim.AvailabilityAvgMetric,
		vcpusim.VCPUUtilizationAvgMetric,
		vcpusim.PCPUUtilizationAvgMetric,
		vcpusim.BlockedFractionMetric,
		vcpusim.SpinFractionMetric,
		vcpusim.EffectiveUtilizationMetric,
	} {
		v, ok := m[name]
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if v < 0 || v > 1 {
			t.Errorf("metric %s = %g out of [0,1]", name, v)
		}
	}
}

func TestRunMatchesRunSAN(t *testing.T) {
	cfg := testConfig()
	for _, factory := range []vcpusim.SchedulerFactory{
		vcpusim.RoundRobin(20),
		vcpusim.StrictCo(20),
		vcpusim.RelaxedCo(vcpusim.RelaxedCoParams{Timeslice: 20}),
		vcpusim.Balance(20),
		vcpusim.Credit(vcpusim.CreditParams{Timeslice: 20}),
	} {
		fast, err := vcpusim.Run(cfg, factory, 1000, 9)
		if err != nil {
			t.Fatal(err)
		}
		san, err := vcpusim.RunSAN(cfg, factory, 1000, 9)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range fast {
			if math.Abs(v-san[name]) > 1e-9 {
				t.Errorf("%s: %s fast=%g san=%g", factory().Name(), name, v, san[name])
			}
		}
	}
}

func TestRunTraced(t *testing.T) {
	m, rec, err := vcpusim.RunTraced(testConfig(), vcpusim.RoundRobin(20), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("no metrics")
	}
	if rec.Len() == 0 {
		t.Fatal("no trace events")
	}
	if g := rec.GanttN(2, 500, 10, 80); !strings.Contains(g, "PCPU0") || !strings.Contains(g, "PCPU1") {
		t.Fatalf("gantt output: %q", g)
	}
}

func TestReplicate(t *testing.T) {
	sum, err := vcpusim.Replicate(context.Background(), testConfig(), vcpusim.RoundRobin(20), 1000,
		vcpusim.SimOptions{Seed: 1, MinReps: 4, MaxReps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Replications < 4 {
		t.Fatalf("replications = %d", sum.Replications)
	}
	iv, ok := sum.Metric(vcpusim.AvailabilityAvgMetric)
	if !ok || iv.Mean <= 0 || iv.Mean > 1 {
		t.Fatalf("availability interval = %v, %v", iv, ok)
	}
}

func TestSchedulerByName(t *testing.T) {
	for _, name := range []string{"RRS", "SCS", "RCS", "Balance", "Credit"} {
		f, err := vcpusim.SchedulerByName(name, vcpusim.SchedParams{Timeslice: 10})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if f().Name() == "" {
			t.Errorf("%s: empty scheduler name", name)
		}
	}
	if _, err := vcpusim.SchedulerByName("bogus", vcpusim.SchedParams{Timeslice: 10}); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestBuildModelDot(t *testing.T) {
	sys, err := vcpusim.BuildModel(testConfig(), vcpusim.RoundRobin(20), 1)
	if err != nil {
		t.Fatal(err)
	}
	dot := sys.Model().Dot()
	for _, want := range []string{"VCPU_Scheduler", "a.Job_Scheduler", "b.Workload_Generator"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestSpinlockThroughFacade(t *testing.T) {
	cfg := vcpusim.SystemConfig{
		PCPUs:     1,
		Timeslice: 10,
		VMs: []vcpusim.VMConfig{
			{VCPUs: 2, Workload: vcpusim.WorkloadSpec{
				Load:       vcpusim.Uniform{Low: 1, High: 10},
				SyncEveryN: 2,
				SyncKind:   vcpusim.SyncSpinlock,
			}},
		},
	}
	m, err := vcpusim.Run(cfg, vcpusim.RoundRobin(10), 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// On one PCPU the running sibling regularly spins behind the
	// descheduled holder.
	if m[vcpusim.SpinFractionMetric] <= 0 {
		t.Error("no spinning on a contended spinlock workload")
	}
	if m[vcpusim.EffectiveUtilizationMetric] >= m[vcpusim.VCPUUtilizationAvgMetric] {
		t.Error("effective utilization not below busy utilization")
	}
}

func TestDefaultExperimentParams(t *testing.T) {
	p := vcpusim.DefaultExperimentParams()
	if p.Horizon != 20000 || p.Timeslice != 30 {
		t.Fatalf("defaults = %+v", p)
	}
}
