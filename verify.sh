#!/bin/sh
# verify.sh — the repo's full verification chain: formatting, go vet, the
# project's own static verifiers (model + determinism lint), and the test
# suite with the race detector on the internal packages.
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go vet -vettool (determinism analyzers under the go driver)"
vettool=$(mktemp -d)/vcpuvet
go build -o "$vettool" ./cmd/vet
go vet -vettool="$vettool" ./...

echo "== vcpusim vet (determinism lint + shipped model check)"
go run ./cmd/vcpusim vet -config cmd/vcpusim/testdata/fig8.json

echo "== vcpusim vet -structural (boundedness/deadlock proofs + link conformance)"
go run ./cmd/vcpusim vet -structural >/dev/null
go run ./cmd/vcpusim vet -structural -config cmd/vcpusim/testdata/fig8.json >/dev/null

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/..."
go test -race ./internal/...

echo "== pooled-determinism gate (goldens + pooled/fresh equivalence, uncached)"
go test -run 'Golden|PooledEquivalence' -count=1 ./internal/core ./internal/san ./internal/experiments

echo "== observability gate (manifest write + schema/counter validation)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/vcpusim experiments -figure 8 -quick -manifest "$obsdir" >/dev/null
go run ./cmd/vcpusim manifest -check "$obsdir/manifest.json"

echo "== deep-inspection gate (trace byte determinism + probe series hashes)"
go run ./cmd/vcpusim trace -config cmd/vcpusim/testdata/fig8.json -horizon 400 \
    -out "$obsdir/trace.json" -probe "$obsdir/series.csv" >/dev/null
go run ./cmd/vcpusim trace -config cmd/vcpusim/testdata/fig8.json -horizon 400 \
    -out "$obsdir/trace2.json" -probe "$obsdir/series2.csv" >/dev/null
cmp "$obsdir/trace.json" "$obsdir/trace2.json"
cmp "$obsdir/series.csv" "$obsdir/series2.csv"
probedir=$(mktemp -d)
go run ./cmd/vcpusim experiments -figure 8 -quick -engine san -hist \
    -probe "$probedir/series" -manifest "$probedir" >/dev/null
go run ./cmd/vcpusim manifest -check "$probedir/manifest.json"
rm -rf "$probedir"

echo "== bench smoke (./bench.sh smoke)"
./bench.sh smoke

echo "verify.sh: all checks passed"
